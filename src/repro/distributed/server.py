"""Parameter server: aggregation, global model update, shared pull compression.

The server (paper §2) stores the global model, averages decompressed
gradient pushes from all workers, applies the update with the global
optimizer (momentum SGD + LR schedule), and compresses the resulting model
deltas *once*, sharing the compressed copy among all workers — 3LC's pull
optimization (paper §3, Figure 2b): "the servers compress model deltas and
make a shared local copy of the compressed model deltas".

Pull compression uses one context per tensor whose error-accumulation
buffer carries deltas that quantization deferred; workers therefore
converge to the global model over time rather than instantaneously, which
is exactly the behaviour the paper's design accepts and evaluates.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.nn.optimizer import MomentumSGD
from repro.nn.parameter import Parameter
from repro.nn.schedule import Schedule

__all__ = ["ParameterServer", "PullBatch"]


class PullBatch:
    """One step's shared compressed model deltas plus server measurements."""

    __slots__ = ("messages", "decompress_seconds", "compress_seconds")

    def __init__(
        self,
        messages: dict[str, CompressionResult | None],
        decompress_seconds: float,
        compress_seconds: float,
    ):
        self.messages = messages
        self.decompress_seconds = decompress_seconds
        self.compress_seconds = compress_seconds


class ParameterServer:
    """The (single) simulated parameter-server node.

    Parameters
    ----------
    parameters:
        Initial global model parameters (cloned; the server owns its copy).
    optimizer:
        Global optimizer applied to aggregated gradients.
    schedule:
        Learning-rate schedule indexed by global step.
    scheme:
        Compression scheme for model-delta pulls (same scheme as pushes in
        all of the paper's experiments).
    num_workers:
        Worker count, used for gradient averaging.
    small_tensor_threshold:
        Tensors below this many elements bypass compression.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        optimizer: MomentumSGD,
        schedule: Schedule,
        scheme: Compressor,
        num_workers: int,
        *,
        small_tensor_threshold: int = 256,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers!r}")
        self.optimizer = optimizer
        self.schedule = schedule
        self.scheme = scheme
        self.num_workers = int(num_workers)
        self.small_tensor_threshold = int(small_tensor_threshold)
        # The server's own Parameter copies; grads are filled by aggregation.
        self.params: dict[str, Parameter] = {
            p.name: Parameter(p.name, p.data.copy(), weight_decay=p.weight_decay)
            for p in parameters
        }
        self.pull_contexts: dict[str, CompressorContext] = {}
        self.bypassed: set[str] = set()
        for name, param in self.params.items():
            key = ("pull", name)
            if param.size < self.small_tensor_threshold:
                self.pull_contexts[name] = scheme.make_bypass_context(
                    param.shape, key=key
                )
                self.bypassed.add(name)
            else:
                self.pull_contexts[name] = scheme.make_context(param.shape, key=key)
        self.global_step = 0

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of the global model (the paper's accuracy-measurement
        node reads exactly this)."""
        return {name: p.data.copy() for name, p in self.params.items()}

    def _decompress_push(self, name: str, message) -> np.ndarray:
        if name in self.bypassed:
            return self.scheme.decompress_bypass(message)
        return self.scheme.decompress(message)

    def step(
        self,
        pushes: list[dict[str, CompressionResult | None]],
        divisor: int | None = None,
    ) -> PullBatch:
        """Run one global step: aggregate, update, compress shared pulls.

        Parameters
        ----------
        pushes:
            One compressed-gradient dict per *participating* worker.
            ``None`` entries mean the worker deferred that tensor this step
            (local-steps scheme). Under a backup-worker barrier the cluster
            passes only the accepted subset.
        divisor:
            Gradient-averaging denominator. Defaults to the configured
            worker count (vanilla BSP); the backup-worker barrier passes
            the accepted count, matching SyncReplicasOptimizer.
        """
        if not (1 <= len(pushes) <= self.num_workers):
            raise ValueError(
                f"expected 1..{self.num_workers} pushes, got {len(pushes)}"
            )
        if divisor is None:
            divisor = self.num_workers
        if divisor < 1:
            raise ValueError("divisor must be >= 1")
        # -- gradient aggregation (decompression measured) ------------------
        t0 = time.perf_counter()
        aggregated: dict[str, np.ndarray] = {}
        for name, param in self.params.items():
            total: np.ndarray | None = None
            for worker_push in pushes:
                result = worker_push[name]
                if result is None:
                    continue
                grad = self._decompress_push(name, result.message)
                total = grad.copy() if total is None else total + grad
            if total is not None:
                # Average over the divisor: deferring workers contribute
                # zero this step (their update arrives later via their
                # error buffers).
                aggregated[name] = total / divisor
        decompress_seconds = time.perf_counter() - t0

        # -- model update ----------------------------------------------------
        lr = self.schedule(self.global_step)
        previous = {name: self.params[name].data.copy() for name in aggregated}
        if aggregated:
            updated = [self.params[name] for name in aggregated]
            for param in updated:
                param.grad = aggregated[param.name]
            self.optimizer.step(updated, lr)
            for param in updated:
                param.grad = None
        self.global_step += 1

        # -- shared pull compression ------------------------------------------
        t1 = time.perf_counter()
        messages: dict[str, CompressionResult | None] = {}
        for name, param in self.params.items():
            if name in aggregated:
                delta = param.data - previous[name]
            else:
                delta = np.zeros(param.shape, dtype=np.float32)
            messages[name] = self.pull_contexts[name].compress(delta)
        compress_seconds = time.perf_counter() - t1
        return PullBatch(messages, decompress_seconds, compress_seconds)

    def decompress_pull(self, name: str, message) -> np.ndarray:
        """Decode one shared pull message (worker side calls this)."""
        if name in self.bypassed:
            return self.scheme.decompress_bypass(message)
        return self.scheme.decompress(message)
