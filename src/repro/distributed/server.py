"""Parameter server: aggregation, global model update, shared pull compression.

The server (paper §2) stores the global model, averages decompressed
gradient pushes from all workers, applies the update with the global
optimizer (momentum SGD + LR schedule), and compresses the resulting model
deltas *once*, sharing the compressed copy among all workers — 3LC's pull
optimization (paper §3, Figure 2b): "the servers compress model deltas and
make a shared local copy of the compressed model deltas".

Pull compression uses one context per tensor whose error-accumulation
buffer carries deltas that quantization deferred; workers therefore
converge to the global model over time rather than instantaneously, which
is exactly the behaviour the paper's design accepts and evaluates.

With a :class:`~repro.compression.fusion.FusionPlan`, the small-tensor
bypass set is exchanged through fused buckets instead: one decompression
per worker per bucket on the push side, one compression per bucket on the
pull side.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.compression.fusion import (
    FusedBucketContext,
    FusedCompressionResult,
    FusionPlan,
    split_bucket,
)
from repro.distributed.defaults import SMALL_TENSOR_THRESHOLD
from repro.nn.optimizer import MomentumSGD
from repro.nn.parameter import Parameter
from repro.nn.schedule import Schedule

__all__ = ["ParameterServer", "PullBatch"]


class PullBatch:
    """One step's shared compressed model deltas plus server measurements."""

    __slots__ = ("messages", "fused", "decompress_seconds", "compress_seconds")

    def __init__(
        self,
        messages: dict[str, CompressionResult | None],
        decompress_seconds: float,
        compress_seconds: float,
        fused: dict[int, FusedCompressionResult | None] | None = None,
    ):
        self.messages = messages
        #: Per-bucket fused pulls (empty when fusion is off).
        self.fused = fused or {}
        self.decompress_seconds = decompress_seconds
        self.compress_seconds = compress_seconds


class ParameterServer:
    """The (single) simulated parameter-server node.

    Parameters
    ----------
    parameters:
        Initial global model parameters (cloned; the server owns its copy).
    optimizer:
        Global optimizer applied to aggregated gradients.
    schedule:
        Learning-rate schedule indexed by global step.
    scheme:
        Compression scheme for model-delta pulls (same scheme as pushes in
        all of the paper's experiments).
    num_workers:
        Worker count, used for gradient averaging.
    small_tensor_threshold:
        Tensors below this many elements bypass compression.
    fusion_plan:
        Optional fused-bucket plan for the bypass set (must match the plan
        the workers were built with).
    """

    def __init__(
        self,
        parameters: list[Parameter],
        optimizer: MomentumSGD,
        schedule: Schedule,
        scheme: Compressor,
        num_workers: int,
        *,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
        fusion_plan: FusionPlan | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers!r}")
        self.optimizer = optimizer
        self.schedule = schedule
        self.scheme = scheme
        self.num_workers = int(num_workers)
        self.small_tensor_threshold = int(small_tensor_threshold)
        self.fusion_plan = fusion_plan
        # The server's own Parameter copies; grads are filled by aggregation.
        self.params: dict[str, Parameter] = {
            p.name: Parameter(p.name, p.data.copy(), weight_decay=p.weight_decay)
            for p in parameters
        }
        fused_names = fusion_plan.fused_names if fusion_plan else frozenset()
        self.pull_contexts: dict[str, CompressorContext] = {}
        self.bypassed: set[str] = set()
        for name, param in self.params.items():
            if name in fused_names:
                self.bypassed.add(name)
                continue
            key = ("pull", name)
            if param.size < self.small_tensor_threshold:
                self.pull_contexts[name] = scheme.make_bypass_context(
                    param.shape, key=key
                )
                self.bypassed.add(name)
            else:
                self.pull_contexts[name] = scheme.make_context(param.shape, key=key)
        self.fused_pull_contexts: dict[int, FusedBucketContext] = {}
        if fusion_plan is not None:
            for bucket in fusion_plan.buckets:
                self.fused_pull_contexts[bucket.index] = scheme.make_fused_context(
                    bucket,
                    key=("pull-fused", bucket.index),
                    lossy=fusion_plan.lossy,
                )
        self.global_step = 0

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of the global model (the paper's accuracy-measurement
        node reads exactly this)."""
        return {name: p.data.copy() for name, p in self.params.items()}

    def _decompress_push(self, name: str, message) -> np.ndarray:
        if name in self.bypassed:
            return self.scheme.decompress_bypass(message)
        return self.scheme.decompress(message)

    def _decompress_fused_pushes(
        self, fused_pushes: list[dict[int, FusedCompressionResult | None]]
    ) -> list[dict[str, np.ndarray]]:
        """One decompression call per worker per bucket; split per tensor."""
        assert self.fusion_plan is not None
        per_worker: list[dict[str, np.ndarray]] = []
        for worker_fused in fused_pushes:
            grads: dict[str, np.ndarray] = {}
            for index, result in worker_fused.items():
                if result is None:
                    continue
                bucket = self.fusion_plan.bucket(index)
                flat = self.scheme.decompress_fused(
                    result.message, lossy=self.fusion_plan.lossy
                )
                grads.update(split_bucket(flat, bucket))
            per_worker.append(grads)
        return per_worker

    def step(
        self,
        pushes: list[dict[str, CompressionResult | None]],
        divisor: int | None = None,
        fused_pushes: list[dict[int, FusedCompressionResult | None]] | None = None,
    ) -> PullBatch:
        """Run one global step: aggregate, update, compress shared pulls.

        Parameters
        ----------
        pushes:
            One compressed-gradient dict per *participating* worker.
            ``None`` entries mean the worker deferred that tensor this step
            (local-steps scheme). Under a backup-worker barrier the cluster
            passes only the accepted subset.
        divisor:
            Gradient-averaging denominator. Defaults to the configured
            worker count (vanilla BSP); the backup-worker barrier passes
            the accepted count, matching SyncReplicasOptimizer.
        fused_pushes:
            Per-worker fused-bucket pushes, aligned with ``pushes``. Only
            meaningful when the server was built with a fusion plan.
        """
        if not (1 <= len(pushes) <= self.num_workers):
            raise ValueError(
                f"expected 1..{self.num_workers} pushes, got {len(pushes)}"
            )
        if divisor is None:
            divisor = self.num_workers
        if divisor < 1:
            raise ValueError("divisor must be >= 1")
        if fused_pushes is not None and len(fused_pushes) != len(pushes):
            raise ValueError("fused_pushes must align with pushes")
        # -- gradient aggregation (decompression measured) ------------------
        t0 = time.perf_counter()
        fused_grads: list[dict[str, np.ndarray]] = []
        if self.fusion_plan is not None and fused_pushes is not None:
            fused_grads = self._decompress_fused_pushes(fused_pushes)
        fused_names = self.fusion_plan.fused_names if self.fusion_plan else frozenset()
        aggregated: dict[str, np.ndarray] = {}
        for name, param in self.params.items():
            total: np.ndarray | None = None
            if name in fused_names:
                for worker_grads in fused_grads:
                    grad = worker_grads.get(name)
                    if grad is None:
                        continue
                    total = grad.copy() if total is None else total + grad
            else:
                for worker_push in pushes:
                    result = worker_push[name]
                    if result is None:
                        continue
                    grad = self._decompress_push(name, result.message)
                    total = grad.copy() if total is None else total + grad
            if total is not None:
                # Average over the divisor: deferring workers contribute
                # zero this step (their update arrives later via their
                # error buffers).
                aggregated[name] = total / divisor
        decompress_seconds = time.perf_counter() - t0

        # -- model update ----------------------------------------------------
        lr = self.schedule(self.global_step)
        previous = {name: self.params[name].data.copy() for name in aggregated}
        if aggregated:
            updated = [self.params[name] for name in aggregated]
            for param in updated:
                param.grad = aggregated[param.name]
            self.optimizer.step(updated, lr)
            for param in updated:
                param.grad = None
        self.global_step += 1

        # -- shared pull compression ------------------------------------------
        t1 = time.perf_counter()
        messages: dict[str, CompressionResult | None] = {}
        for name, param in self.params.items():
            if name in fused_names:
                continue
            delta = self._pull_delta(name, param, aggregated, previous)
            messages[name] = self.pull_contexts[name].compress(delta)
        fused_messages: dict[int, FusedCompressionResult | None] = {}
        if self.fusion_plan is not None:
            for bucket in self.fusion_plan.buckets:
                deltas = {
                    name: self._pull_delta(
                        name, self.params[name], aggregated, previous
                    )
                    for name in bucket.names
                }
                fused_messages[bucket.index] = self.fused_pull_contexts[
                    bucket.index
                ].compress(deltas)
        compress_seconds = time.perf_counter() - t1
        return PullBatch(messages, decompress_seconds, compress_seconds, fused_messages)

    @staticmethod
    def _pull_delta(
        name: str,
        param: Parameter,
        aggregated: dict[str, np.ndarray],
        previous: dict[str, np.ndarray],
    ) -> np.ndarray:
        if name in aggregated:
            return param.data - previous[name]
        return np.zeros(param.shape, dtype=np.float32)

    def decompress_pull(self, name: str, message) -> np.ndarray:
        """Decode one shared pull message (worker side calls this)."""
        if name in self.bypassed:
            return self.scheme.decompress_bypass(message)
        return self.scheme.decompress(message)

    def decompress_fused_pull(self, index: int, message) -> dict[str, np.ndarray]:
        """Decode one fused pull bucket into named deltas (one codec call)."""
        if self.fusion_plan is None:
            raise ValueError("server has no fusion plan")
        bucket = self.fusion_plan.bucket(index)
        flat = self.scheme.decompress_fused(message, lossy=self.fusion_plan.lossy)
        return split_bucket(flat, bucket)
