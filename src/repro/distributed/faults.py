"""Fault injection: worker crashes, rack uplink flaps, departures.

The paper's compression schemes keep persistent per-link error-feedback
state, which is exactly the state a real fleet corrupts when a worker
crashes or a rack falls off its uplink. A :class:`FaultSpec` describes a
deterministic churn scenario — *which* worker or rack fails at *which*
step and for *how long* — so the engine can replay it reproducibly and
the simulator can score its cost the same way it scores overlap.

Semantics (the engine enforces these; see ``exchange/engine.py``):

- A :class:`WorkerCrash` removes the worker from the barrier for
  ``down_steps`` steps. On rejoin the recovery layer restores the
  worker's checkpointed error-feedback residuals and resyncs its model
  replica from the server (``FaultSpec.checkpoint_state=True``), or —
  the naive baseline — does neither, leaving zeroed residuals and a
  stale replica that permanently misses the down-window deltas.
- Crashes count against ``max_restarts``; a worker that exceeds the cap
  (or crashes with ``depart=True``) leaves permanently.
- An :class:`UplinkFlap` takes one rack's cross-rack uplink down for
  ``down_steps`` steps under ``--topology hier``: the rack keeps
  ring-reducing and stepping locally, its aggregate is excluded from
  the global exchange, and on rejoin the backlog is pushed through the
  uplink's error-feedback context while members resync from the core.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkerCrash", "UplinkFlap", "FaultSpec"]


@dataclass(frozen=True)
class WorkerCrash:
    """One worker process dies at the start of ``step``.

    The worker misses ``down_steps`` consecutive steps (crash step
    included) and attempts to rejoin at ``step + down_steps`` unless
    ``depart`` is set or its restart budget is exhausted.
    """

    worker: int
    step: int
    down_steps: int = 1
    depart: bool = False

    def __post_init__(self):
        if self.worker < 0:
            raise ValueError(f"crash worker must be >= 0, got {self.worker}")
        if self.step < 0:
            raise ValueError(f"crash step must be >= 0, got {self.step}")
        if self.down_steps < 1:
            raise ValueError(
                f"crash down_steps must be >= 1, got {self.down_steps}"
            )


@dataclass(frozen=True)
class UplinkFlap:
    """One rack's cross-rack uplink drops at the start of ``step``.

    The rack degrades to local-only training for ``down_steps`` steps
    and re-syncs on rejoin; ``rejoin_delay_seconds`` models the extra
    time the rejoin step's cross link is unavailable while the fabric
    re-converges (replayed by the simulator as a link-down floor).
    """

    rack: int
    step: int
    down_steps: int = 1
    rejoin_delay_seconds: float = 0.0

    def __post_init__(self):
        if self.rack < 0:
            raise ValueError(f"flap rack must be >= 0, got {self.rack}")
        if self.step < 0:
            raise ValueError(f"flap step must be >= 0, got {self.step}")
        if self.down_steps < 1:
            raise ValueError(
                f"flap down_steps must be >= 1, got {self.down_steps}"
            )
        if self.rejoin_delay_seconds < 0.0:
            raise ValueError(
                "flap rejoin_delay_seconds must be >= 0, got "
                f"{self.rejoin_delay_seconds}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """A deterministic churn scenario for one run.

    Hashable (tuples of frozen events) so it can ride a frozen config
    and land in the replay-cache fingerprint — two runs differing only
    in their faults must never share a recording.
    """

    crashes: tuple[WorkerCrash, ...] = ()
    flaps: tuple[UplinkFlap, ...] = ()
    #: Per-worker restart budget; a crash beyond it becomes a departure.
    max_restarts: int = 2
    #: True: restore checkpointed error-feedback residuals and resync
    #: the replica on rejoin. False: the naive baseline (no recovery
    #: protocol) — measurably corrupts convergence.
    checkpoint_state: bool = True

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        crash_steps = [(c.worker, c.step) for c in self.crashes]
        if len(set(crash_steps)) != len(crash_steps):
            raise ValueError("duplicate (worker, step) crash events")
        flap_steps = [(f.rack, f.step) for f in self.flaps]
        if len(set(flap_steps)) != len(flap_steps):
            raise ValueError("duplicate (rack, step) flap events")

    @property
    def empty(self) -> bool:
        return not self.crashes and not self.flaps

    def crash_at(self, worker: int, step: int) -> WorkerCrash | None:
        """The crash event hitting ``worker`` at ``step``, if any."""
        for crash in self.crashes:
            if crash.worker == worker and crash.step == step:
                return crash
        return None

    def flap_at(self, rack: int, step: int) -> UplinkFlap | None:
        """The flap event hitting ``rack`` at ``step``, if any."""
        for flap in self.flaps:
            if flap.rack == rack and flap.step == step:
                return flap
        return None
