"""Process-wide metrics registry: counters, gauges, histograms.

Instruments are created lazily through the registry and keyed by a
Prometheus-style series name — ``wire_bytes{link=cross,scheme=3lc}`` —
with labels sorted so the same logical series always lands on the same
instrument regardless of call-site keyword order.

A disabled registry hands out shared no-op singletons instead of real
instruments, so instrumented hot paths pay one attribute lookup and an
empty method call when telemetry is off (the engine and simulators
additionally gate whole blocks on ``telemetry.enabled`` / a ``None``
tracer, so replay loops pay nothing at all).
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "series_key",
]


def series_key(name: str, labels: dict) -> str:
    """``name{k=v,...}`` with labels sorted by key; bare name if none."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing total (bytes, seconds, messages)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self.value += amount


class Gauge:
    """Last-written value (learning rate, loss, link utilization)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Power-of-two buckets spanning microseconds to ~hundreds of units —
#: wide enough for seconds-valued codec costs and integer staleness alike.
DEFAULT_BOUNDS = tuple(2.0**k for k in range(-20, 11))


class Histogram:
    """Distribution sketch: count/sum/min/max plus bucketed counts."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(sorted(bounds))
        # One extra overflow bucket for values above the last bound.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_right(self.bounds, value)] += 1

    def snapshot(self) -> dict:
        """JSON-ready stats; only occupied buckets are listed."""
        buckets = {}
        for index, occupancy in enumerate(self.bucket_counts):
            if not occupancy:
                continue
            upper = (
                f"le={self.bounds[index]:g}"
                if index < len(self.bounds)
                else f"gt={self.bounds[-1]:g}"
            )
            buckets[upper] = occupancy
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": (self.total / self.count) if self.count else None,
            "buckets": buckets,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create instrument store keyed by labeled series name."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._series: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, key: str):
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = cls()
        elif type(instrument) is not cls:
            raise TypeError(
                f"series {key!r} is a {type(instrument).__name__}, "
                f"requested as {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(Counter, series_key(name, labels))

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(Gauge, series_key(name, labels))

    def histogram(self, name: str, **labels) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get(Histogram, series_key(name, labels))

    def snapshot(self) -> dict:
        """All series, grouped by kind, as plain JSON-ready values."""
        counters, gauges, histograms = {}, {}, {}
        for key, instrument in sorted(self._series.items()):
            if isinstance(instrument, Histogram):
                histograms[key] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            else:
                counters[key] = instrument.value
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


NULL_REGISTRY = MetricsRegistry(enabled=False)
