"""Exporters: Chrome trace_event JSON, JSONL metric snapshots, text summary.

The Chrome exporter emits the legacy ``traceEvents`` JSON object format
(loadable in Perfetto and chrome://tracing): one *process* per span
group per session and one *thread* per track, named through ``"M"``
metadata events, with every span a ``"X"`` complete event whose
``ts``/``dur`` are microseconds. Simulated clocks start at 0, so a
trace of a simulated run reads as "microseconds of virtual time".

``write_metric_snapshots`` streams per-step registry snapshots as one
JSON object per line (JSONL) — cheap to append, trivial to load into a
dataframe — followed by one ``"final": true`` row per session with the
end-of-run totals.

Both writers call :meth:`Tracer.check_closed` first, so a trace with
dangling ``begin()`` spans fails loudly instead of exporting a lie.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.utils.format import format_table

__all__ = [
    "chrome_trace",
    "metric_rows",
    "summary_text",
    "write_chrome_trace",
    "write_metric_snapshots",
]


def _sessions(sessions_or_tracer) -> list[tuple[str, object]]:
    """Normalize to ``[(label, tracer_or_telemetry)]``.

    Accepts a bare :class:`Tracer`, a :class:`Telemetry` bundle, or an
    iterable of ``(label, tracer_or_telemetry)`` pairs.
    """
    if hasattr(sessions_or_tracer, "spans") or hasattr(
        sessions_or_tracer, "tracer"
    ):
        return [("", sessions_or_tracer)]
    return [(label, session) for label, session in sessions_or_tracer]


def _tracer(session):
    return session.tracer if hasattr(session, "tracer") else session


def chrome_trace(sessions) -> dict:
    """Build the ``{"traceEvents": [...]}`` object for Perfetto.

    ``sessions`` is anything :func:`_sessions` accepts; session labels
    prefix process names so several runs share one timeline file.
    """
    events: list[dict] = []
    pid_of: dict[str, int] = {}
    tid_of: dict[tuple[int, str], int] = {}
    for label, session in _sessions(sessions):
        tracer = _tracer(session)
        tracer.check_closed()
        for span in tracer.spans:
            process = f"{label}:{span.group}" if label else span.group
            pid = pid_of.get(process)
            if pid is None:
                pid = pid_of[process] = len(pid_of) + 1
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": process},
                    }
                )
            tid = tid_of.get((pid, span.track))
            if tid is None:
                tid = tid_of[(pid, span.track)] = (
                    sum(1 for key in tid_of if key[0] == pid) + 1
                )
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": span.track},
                    }
                )
            event = {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, sessions) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    data = chrome_trace(sessions)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data) + "\n")
    return len(data["traceEvents"])


def metric_rows(sessions) -> list[dict]:
    """Per-step snapshot rows plus one final-totals row per session."""
    rows = []
    for label, session in _sessions(sessions):
        registry = getattr(session, "registry", None)
        if registry is None:
            continue
        for snapshot in getattr(session, "step_snapshots", ()):
            rows.append({"session": label, **snapshot})
        rows.append({"session": label, "final": True, "metrics": registry.snapshot()})
    return rows


def write_metric_snapshots(path, sessions) -> int:
    """Write JSONL metric snapshots; returns the row count."""
    for _, session in _sessions(sessions):
        _tracer(session).check_closed()
    rows = metric_rows(sessions)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    return len(rows)


def summary_text(summary: dict, *, title: str = "Telemetry summary") -> str:
    """Table-1-style text rendering of a ``Telemetry.summary()`` dict."""
    sections = []
    counters = summary.get("counters") or {}
    if counters:
        sections.append(
            format_table(
                ["Counter", "Total"],
                [[key, f"{value:g}"] for key, value in counters.items()],
                title=title,
            )
        )
    gauges = summary.get("gauges") or {}
    if gauges:
        sections.append(
            format_table(
                ["Gauge", "Last value"],
                [[key, f"{value:g}"] for key, value in gauges.items()],
                title="Gauges",
            )
        )
    histograms = summary.get("histograms") or {}
    if histograms:
        sections.append(
            format_table(
                ["Histogram", "Count", "Mean", "Min", "Max"],
                [
                    [
                        key,
                        str(stats["count"]),
                        "-" if stats["mean"] is None else f"{stats['mean']:.4g}",
                        "-" if stats["min"] is None else f"{stats['min']:.4g}",
                        "-" if stats["max"] is None else f"{stats['max']:.4g}",
                    ]
                    for key, stats in histograms.items()
                ],
                title="Histograms",
            )
        )
    spans = summary.get("spans") or {}
    if spans:
        sections.append(
            format_table(
                ["Track", "Spans", "Busy seconds"],
                [
                    [key, str(stats["count"]), f"{stats['busy_seconds']:.6f}"]
                    for key, stats in spans.items()
                ],
                title="Span tracks",
            )
        )
    if not sections:
        return f"{title}: empty"
    return "\n\n".join(sections)
