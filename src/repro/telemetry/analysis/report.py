"""``repro-report``: ranked bottleneck report from an exported trace.

Usage::

    python -m repro.telemetry.analysis.report TRACE.json \
        [--json OUT.json] [--top N] [--check] [--results ARCHIVE.json]

Attributes every group of the trace (see
:mod:`repro.telemetry.analysis.attribution`), prints one ranked
bucket table per group, and optionally writes the
``repro.bottleneck-report/v1`` JSON artifact.

``--check`` turns the report into a gate: exit 1 unless every step
window's bucket sums reconcile with its simulated duration to 1e-6
(the partition guarantees this, so a failure means a simulator track
leaked spans outside its step or dropped a ``step`` arg — exactly the
regression CI wants to catch).

``--results`` cross-references a ``--save`` archive: simulated totals
recorded per link are printed next to the attributed totals, tying the
report back to the tables the harness emits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.telemetry.analysis.attribution import (
    attribute_trace,
    bottleneck_report,
    load_chrome_trace,
    report_text,
)

__all__ = ["main"]

RECONCILE_TOLERANCE = 1e-6


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", metavar="TRACE.json", type=Path)
    parser.add_argument(
        "--json", metavar="OUT.json", default=None,
        help="write the repro.bottleneck-report/v1 artifact",
    )
    parser.add_argument(
        "--top", type=int, default=5,
        help="buckets listed per group (default 5)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every step's buckets reconcile with its "
        f"duration to {RECONCILE_TOLERANCE:g}",
    )
    parser.add_argument(
        "--results", metavar="ARCHIVE.json", default=None,
        help="--save archive to print simulated per-link totals alongside",
    )
    args = parser.parse_args(argv)
    data = load_chrome_trace(args.trace)
    attributions = attribute_trace(data)
    report = bottleneck_report(attributions, top=args.top)
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n")
    print(report_text(report, top=args.top))
    if args.results is not None:
        archive = json.loads(Path(args.results).read_text())
        for result in archive if isinstance(archive, list) else []:
            totals = result.get("total_seconds") or {}
            if totals:
                pairs = ", ".join(
                    f"{link}={seconds:.6f}s"
                    for link, seconds in sorted(totals.items())
                )
                print(
                    f"archived totals [{result.get('scheme', '?')}]: {pairs}"
                )
    if args.check:
        worst = 0.0
        for attribution in attributions:
            worst = max(worst, attribution.max_reconciliation_error)
        if worst > RECONCILE_TOLERANCE:
            print(
                f"RECONCILIATION FAILED: max |sum(buckets) - window| = "
                f"{worst:g} > {RECONCILE_TOLERANCE:g}"
            )
            return 1
        print(
            f"reconciliation ok: max |sum(buckets) - window| = {worst:g} "
            f"across {sum(len(a.steps) for a in attributions)} windows"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
