"""Live metrics exposition over stdlib HTTP (no dependencies).

:class:`MetricsServer` wraps a ``ThreadingHTTPServer`` on a daemon
thread, reading the harness's live ``telemetry_sessions`` list through
a provider callable — runs appear on the endpoints as the sweep
executes them, no registration step.

Endpoints:

``GET /metrics``
    Prometheus text exposition format 0.0.4. Every registry series
    (``wire_bytes{phase=push,scheme=3lc}``) renders with its labels
    plus a ``session`` label; histograms expand to cumulative
    ``_bucket`` / ``_sum`` / ``_count`` series.
``GET /stream``
    NDJSON feed: one JSON object per recorded step snapshot, then
    follow-mode — new snapshots stream as runs record them (0.2 s
    poll). Closes when the client disconnects or the server stops.
``GET /``
    Tiny plain-text index of the two endpoints.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry.metrics import Gauge, Histogram

__all__ = ["MetricsServer", "prometheus_text"]


def _parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`~repro.telemetry.metrics.series_key`."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{label}="{_escape(value)}"' for label, value in sorted(labels.items())
    )
    return f"{{{inner}}}"


def _bound_of(bucket_key: str) -> float:
    """Upper bound of a snapshot bucket key (``le=0.5`` / ``gt=1024``)."""
    _, _, text = bucket_key.partition("=")
    return float(text)


def prometheus_text(sessions) -> str:
    """Render labeled sessions as Prometheus exposition format 0.0.4.

    ``sessions`` is an iterable of ``(label, Telemetry-or-registry)``
    pairs (the harness's ``telemetry_sessions`` list). Series names
    collect across sessions under one ``# TYPE`` header; the session
    label keeps same-named series distinct.
    """
    by_name: dict[str, list[str]] = {}
    kind_of: dict[str, str] = {}
    for label, session in sessions:
        registry = getattr(session, "registry", session)
        snapshot = registry.snapshot()
        for kind, series in (
            ("counter", snapshot["counters"]),
            ("gauge", snapshot["gauges"]),
            ("histogram", snapshot["histograms"]),
        ):
            for key, value in series.items():
                name, labels = _parse_series_key(key)
                if label:
                    labels = {**labels, "session": label}
                kind_of.setdefault(name, kind)
                lines = by_name.setdefault(name, [])
                if kind == "histogram":
                    cumulative = 0
                    # Snapshot buckets are per-bin occupancy in bound
                    # order; Prometheus wants cumulative le= counts.
                    finite = sorted(
                        (
                            (bucket, count)
                            for bucket, count in value["buckets"].items()
                            if bucket.startswith("le=")
                        ),
                        key=lambda item: _bound_of(item[0]),
                    )
                    for bucket, count in finite:
                        cumulative += count
                        bucket_labels = {**labels, "le": f"{_bound_of(bucket):g}"}
                        lines.append(
                            f"{name}_bucket{_labels_text(bucket_labels)}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket{_labels_text({**labels, 'le': '+Inf'})}"
                        f" {value['count']}"
                    )
                    lines.append(
                        f"{name}_sum{_labels_text(labels)} {value['sum']:g}"
                    )
                    lines.append(
                        f"{name}_count{_labels_text(labels)} {value['count']}"
                    )
                else:
                    lines.append(f"{name}{_labels_text(labels)} {value:g}")
    out: list[str] = []
    for name in sorted(by_name):
        out.append(f"# TYPE {name} {kind_of[name]}")
        out.extend(by_name[name])
    return "\n".join(out) + "\n" if out else "\n"


def _snapshot_rows(sessions) -> list[dict]:
    """Flattened step-snapshot rows across sessions, in record order."""
    rows: list[dict] = []
    for label, session in sessions:
        for index, snapshot in enumerate(
            getattr(session, "step_snapshots", ())
        ):
            rows.append({"session": label, "seq": index, **snapshot})
    return rows


class MetricsServer:
    """Background exposition server over a live session-list provider.

    ``provider`` returns the current ``[(label, Telemetry)]`` list on
    every request, so sessions appended mid-sweep show up immediately.
    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports
    the bound one.
    """

    def __init__(self, provider, *, host: str = "127.0.0.1", port: int = 0):
        self._provider = provider
        self._stopping = threading.Event()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002 - stdlib name
                pass  # exposition is quiet; the harness owns stdout

            def _send(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if self.path.split("?")[0] == "/metrics":
                    body = prometheus_text(outer._provider()).encode()
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        body,
                    )
                elif self.path.split("?")[0] == "/stream":
                    self.send_response(200)
                    self.send_header("Content-Type", "application/x-ndjson")
                    self.end_headers()
                    sent = 0
                    try:
                        while not outer._stopping.is_set():
                            rows = _snapshot_rows(outer._provider())
                            for row in rows[sent:]:
                                self.wfile.write(
                                    json.dumps(row).encode() + b"\n"
                                )
                            if len(rows) > sent:
                                self.wfile.flush()
                                sent = len(rows)
                            outer._stopping.wait(0.2)
                    except (BrokenPipeError, ConnectionResetError):
                        pass
                elif self.path == "/":
                    self._send(
                        200,
                        "text/plain; charset=utf-8",
                        b"repro metrics exposition\n"
                        b"  /metrics  Prometheus text format\n"
                        b"  /stream   NDJSON step-snapshot feed\n",
                    )
                else:
                    self._send(404, "text/plain", b"not found\n")

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
