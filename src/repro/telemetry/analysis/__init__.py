"""Run analysis: critical-path attribution, trace diffing, live metrics.

This package turns the raw telemetry a run records into answers:

* :mod:`~repro.telemetry.analysis.attribution` walks an exported Chrome
  trace (or a live tracer) and decomposes each simulated step into
  compute / codec / per-link wire / barrier-wait / outage-stall buckets
  via an exact time-slice partition — bucket sums reconcile with the
  simulated step time by construction.
* :mod:`~repro.telemetry.analysis.report` is the ``repro-report`` CLI
  (``python -m repro.telemetry.analysis.report``): ranked bottleneck
  tables plus a ``repro.bottleneck-report/v1`` JSON artifact.
* :mod:`~repro.telemetry.analysis.diff` aligns two traces by
  (group, step) identity and localizes regressions, naming flapped
  links from outage tracks and correlating against archived
  ``fault_summary`` rollups.
* :mod:`~repro.telemetry.analysis.serve` exposes live registries over
  stdlib HTTP: Prometheus text format on ``/metrics`` and an NDJSON
  snapshot feed on ``/stream`` (the harness's ``--serve-metrics``).
"""

from __future__ import annotations

from repro.telemetry.analysis.attribution import (
    RunAttribution,
    StepAttribution,
    TraceSpan,
    attribute_group,
    attribute_trace,
    bottleneck_report,
    classify,
    report_text,
    spans_from_chrome,
    spans_from_tracer,
)

# diff/serve import lazily so `python -m repro.telemetry.analysis.diff`
# doesn't trip runpy's found-in-sys.modules warning.
_LAZY = {
    "diff_report": "repro.telemetry.analysis.diff",
    "diff_text": "repro.telemetry.analysis.diff",
    "MetricsServer": "repro.telemetry.analysis.serve",
    "prometheus_text": "repro.telemetry.analysis.serve",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "MetricsServer",
    "RunAttribution",
    "StepAttribution",
    "TraceSpan",
    "attribute_group",
    "attribute_trace",
    "bottleneck_report",
    "classify",
    "diff_report",
    "diff_text",
    "prometheus_text",
    "report_text",
    "spans_from_chrome",
    "spans_from_tracer",
]
