"""Critical-path attribution: step time → exhaustive cost buckets.

The simulators trace every piece of work they schedule (compute,
per-record codec slots, per-link transfers, server serialization,
outage floors) as closed spans on named tracks. Attribution partitions
each step's time window into elementary slices at every span boundary
and charges each slice to exactly one bucket:

``compute``
    some worker's backward pass is running;
``codec``
    no compute, but compression / decompression / server apply work is;
``wire:<route>``
    only transfers are in flight — the slice charges the transfer that
    *ends last* (the one on the critical path out of the slice);
``outage:<route>``
    nothing productive is scheduled and an injected outage floor is
    holding a route down;
``barrier_wait``
    nothing at all is scheduled — pure dependency / barrier stall.

Because the buckets partition the window, their sums reconcile with
the simulated step time **by construction** (to float addition error,
well under the 1e-6 the CI gate asserts). That makes the ranked
report trustworthy: a bucket's share *is* its share of the step.

Step windows come from span ``step`` args: consecutive steps lay out
contiguously on the simulators' trace clocks (``trace_offset``), so
step *k*'s window runs from its earliest span start to step *k+1*'s.
Traces without step args (per-update event streams) attribute as one
window spanning the whole run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.format import format_table

__all__ = [
    "RunAttribution",
    "StepAttribution",
    "TraceSpan",
    "attribute_group",
    "attribute_trace",
    "bottleneck_report",
    "classify",
    "load_chrome_trace",
    "report_text",
    "spans_from_chrome",
    "spans_from_tracer",
]

REPORT_SCHEMA = "repro.bottleneck-report/v1"

#: Lower number wins when spans of several kinds cover one slice.
_PRIORITY = {"compute": 0, "codec": 1, "wire": 2, "barrier": 3, "outage": 4}


@dataclass(frozen=True)
class TraceSpan:
    """One closed span, loader-normalized to seconds.

    ``group`` is the emitting component (Chrome process, minus any
    session label prefix), ``track`` the timeline it rode on.
    """

    group: str
    track: str
    name: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def load_chrome_trace(path) -> dict:
    """Read a Chrome ``traceEvents`` JSON file."""
    return json.loads(Path(path).read_text())


def spans_from_chrome(data: dict) -> list[TraceSpan]:
    """Complete (``"X"``) events of a Chrome trace as :class:`TraceSpan`.

    Process / thread names come from the ``"M"`` metadata events the
    exporter writes; microsecond timestamps convert back to seconds.
    """
    events = data.get("traceEvents") or []
    process_of: dict[int, str] = {}
    track_of: dict[tuple[int, int], str] = {}
    spans: list[TraceSpan] = []
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            name = (event.get("args") or {}).get("name", "")
            if event.get("name") == "process_name":
                process_of[event["pid"]] = name
            elif event.get("name") == "thread_name":
                track_of[(event["pid"], event["tid"])] = name
        elif phase == "X":
            pid, tid = event["pid"], event["tid"]
            start = float(event["ts"]) / 1e6
            end = start + float(event.get("dur", 0.0)) / 1e6
            spans.append(
                TraceSpan(
                    group=process_of.get(pid, f"pid{pid}"),
                    track=track_of.get((pid, tid), f"tid{tid}"),
                    name=str(event.get("name", "")),
                    start=start,
                    end=end,
                    args=dict(event.get("args") or {}),
                )
            )
    return spans


def spans_from_tracer(tracer, label: str = "") -> list[TraceSpan]:
    """A live :class:`~repro.telemetry.tracing.Tracer`'s spans.

    ``label`` prefixes group names the way the Chrome exporter prefixes
    process names, so live and exported attributions key identically.
    """
    prefix = f"{label}:" if label else ""
    return [
        TraceSpan(
            group=f"{prefix}{span.group}",
            track=span.track,
            name=span.name,
            start=span.start,
            end=span.end,
            args=dict(span.args),
        )
        for span in tracer.spans
    ]


def classify(track: str, name: str) -> tuple[str, str]:
    """Map a span's (track, name) to ``(kind, bucket)``.

    ``kind`` drives slice priority (see module docstring); ``bucket``
    is the report key — per-route for wire and outage kinds.
    """
    if track.startswith("link:"):
        route = track[len("link:"):]
        return "wire", f"wire:{route}"
    if track.startswith("outage:"):
        route = track[len("outage:"):]
        return "outage", f"outage:{route}"
    if track.startswith("codec"):
        return "codec", "codec"
    if track.startswith("server"):
        return "codec", "codec"
    if track == "compute":
        # The replay's shared compute track carries "backward" plus the
        # serialized pull decode.
        return ("compute", "compute") if name.startswith("backward") else (
            "codec", "codec"
        )
    if track.startswith(("worker", "rack")):
        if name.startswith("compute"):
            return "compute", "compute"
        if "wait" in name:
            return "barrier", "barrier_wait"
        # compress / push-compress / pull-decompress
        return "codec", "codec"
    return "barrier", "barrier_wait"


def _rack_of(track: str) -> str | None:
    """Rack label for a track, when one is encoded in its route/name."""
    for prefix in ("link:", "outage:"):
        if track.startswith(prefix):
            track = track[len(prefix):]
            break
    if track.startswith("cross:"):
        track = track[len("cross:"):]
    if track.startswith("rack"):
        suffix = track[len("rack"):]
        if suffix.isdigit():
            return f"rack{suffix}"
    return None


@dataclass(frozen=True)
class StepAttribution:
    """One step window's exhaustive decomposition."""

    step: int | None
    start: float
    end: float
    buckets: dict[str, float]

    @property
    def total_seconds(self) -> float:
        return self.end - self.start

    @property
    def reconciliation_error(self) -> float:
        return abs(sum(self.buckets.values()) - self.total_seconds)


@dataclass(frozen=True)
class RunAttribution:
    """One trace group's attribution across every step window."""

    group: str
    steps: tuple[StepAttribution, ...]
    per_worker: dict[str, dict[str, float]]
    per_rack: dict[str, dict[str, float]]

    @property
    def total_seconds(self) -> float:
        return sum(step.total_seconds for step in self.steps)

    @property
    def buckets(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for step in self.steps:
            for bucket, seconds in step.buckets.items():
                totals[bucket] = totals.get(bucket, 0.0) + seconds
        return totals

    @property
    def max_reconciliation_error(self) -> float:
        return max(
            (step.reconciliation_error for step in self.steps), default=0.0
        )

    def ranked(self) -> list[tuple[str, float]]:
        """Buckets by descending seconds (the bottleneck order)."""
        return sorted(self.buckets.items(), key=lambda kv: (-kv[1], kv[0]))


def _step_windows(spans: list[TraceSpan]) -> list[tuple[int | None, float, float]]:
    """Derive ``(step, start, end)`` windows covering the group's clock.

    Steps tile contiguously (the simulators advance ``trace_offset`` by
    each step's duration), so window *k* ends where *k+1* begins; the
    last window ends at the group's latest span end. Spans without a
    ``step`` arg fall into whichever window contains them.
    """
    starts: dict[int, float] = {}
    for span in spans:
        step = span.args.get("step")
        if isinstance(step, int):
            starts[step] = min(starts.get(step, span.start), span.start)
    trace_end = max((span.end for span in spans), default=0.0)
    if not starts:
        trace_start = min((span.start for span in spans), default=0.0)
        return [(None, trace_start, trace_end)]
    ordered = sorted(starts)
    windows: list[tuple[int | None, float, float]] = []
    for index, step in enumerate(ordered):
        begin = starts[step]
        end = starts[ordered[index + 1]] if index + 1 < len(ordered) else trace_end
        windows.append((step, begin, max(begin, end)))
    return windows


def _attribute_window(
    spans: list[TraceSpan], begin: float, end: float
) -> dict[str, float]:
    """Exact partition of ``[begin, end]`` into bucket seconds.

    Every span boundary inside the window cuts an elementary slice;
    each slice charges the highest-priority active kind (wire slices
    charge the active transfer ending last — the one the critical path
    exits through). Uncovered slices are barrier waits.
    """
    clipped: list[tuple[float, float, str, str, float]] = []
    for span in spans:
        lo = max(span.start, begin)
        hi = min(span.end, end)
        if hi <= lo:
            continue
        kind, bucket = classify(span.track, span.name)
        # A wire slice charges the transfer ending last; keep the
        # span's true end (not the clipped end) as the tie-breaker key.
        clipped.append((lo, hi, kind, bucket, span.end))
    if end <= begin:
        return {}
    cuts = {begin, end}
    for lo, hi, _, _, _ in clipped:
        cuts.add(lo)
        cuts.add(hi)
    edges = sorted(cuts)
    buckets: dict[str, float] = {}
    for lo, hi in zip(edges, edges[1:]):
        if hi <= lo:
            continue
        # Every span endpoint is a cut, so a span either covers this
        # whole elementary slice or none of it.
        best: tuple[int, float, str] | None = None
        for s_lo, s_hi, kind, bucket, true_end in clipped:
            if s_lo > lo or s_hi < hi:
                continue
            # Within one priority class prefer the span ending last
            # (meaningful for wire; harmless elsewhere).
            key = (_PRIORITY[kind], -true_end, bucket)
            if best is None or key < best:
                best = key
        bucket = best[2] if best is not None else "barrier_wait"
        buckets[bucket] = buckets.get(bucket, 0.0) + (hi - lo)
    return buckets


def attribute_group(spans: list[TraceSpan], group: str) -> RunAttribution:
    """Attribute one group's spans across its step windows."""
    mine = [span for span in spans if span.group == group]
    windows = _step_windows(mine)
    steps = tuple(
        StepAttribution(
            step=step,
            start=begin,
            end=end,
            buckets=_attribute_window(mine, begin, end),
        )
        for step, begin, end in windows
    )
    # Busy-seconds rollups (span-duration sums, not a partition): which
    # worker / rack each bucket's work belongs to.
    per_worker: dict[str, dict[str, float]] = {}
    per_rack: dict[str, dict[str, float]] = {}
    for span in mine:
        _, bucket = classify(span.track, span.name)
        worker = span.args.get("worker")
        if worker is None and span.track.startswith("worker"):
            suffix = span.track[len("worker"):]
            if suffix.isdigit():
                worker = int(suffix)
        if worker is not None:
            row = per_worker.setdefault(f"worker{worker}", {})
            row[bucket] = row.get(bucket, 0.0) + span.duration
        rack = _rack_of(span.track)
        if rack is not None:
            row = per_rack.setdefault(rack, {})
            row[bucket] = row.get(bucket, 0.0) + span.duration
    return RunAttribution(
        group=group, steps=steps, per_worker=per_worker, per_rack=per_rack
    )


def attribute_trace(data_or_spans) -> list[RunAttribution]:
    """Attribute every group of a Chrome trace (or span list).

    Groups are attributed in first-appearance order; empty groups are
    skipped.
    """
    if isinstance(data_or_spans, dict):
        spans = spans_from_chrome(data_or_spans)
    else:
        spans = list(data_or_spans)
    groups: list[str] = []
    for span in spans:
        if span.group not in groups:
            groups.append(span.group)
    return [attribute_group(spans, group) for group in groups]


def bottleneck_report(
    attributions: list[RunAttribution], *, top: int = 5
) -> dict:
    """JSON-ready ranked bottleneck report (``repro.bottleneck-report/v1``)."""
    sessions = []
    for attribution in attributions:
        total = attribution.total_seconds
        ranked = attribution.ranked()
        sessions.append(
            {
                "group": attribution.group,
                "total_seconds": total,
                "buckets": dict(ranked),
                "bottlenecks": [
                    {
                        "bucket": bucket,
                        "seconds": seconds,
                        "share": (seconds / total) if total > 0 else 0.0,
                    }
                    for bucket, seconds in ranked[:top]
                ],
                "steps": [
                    {
                        "step": step.step,
                        "start": step.start,
                        "end": step.end,
                        "total_seconds": step.total_seconds,
                        "buckets": step.buckets,
                    }
                    for step in attribution.steps
                ],
                "per_worker": attribution.per_worker,
                "per_rack": attribution.per_rack,
                "reconciliation": {
                    "max_abs_error": attribution.max_reconciliation_error,
                },
            }
        )
    return {"schema": REPORT_SCHEMA, "sessions": sessions}


def report_text(report: dict, *, top: int = 5) -> str:
    """Table rendering of a bottleneck report (harness / CLI output)."""
    sections = []
    for session in report.get("sessions", []):
        total = session["total_seconds"]
        rows = [
            [
                entry["bucket"],
                f"{entry['seconds']:.6f}",
                f"{100.0 * entry['share']:.1f}%",
            ]
            for entry in session["bottlenecks"][:top]
        ]
        title = (
            f"Bottlenecks: {session['group']} "
            f"({total:.6f} s over {len(session['steps'])} windows)"
        )
        sections.append(
            format_table(["Bucket", "Seconds", "Share"], rows, title=title)
        )
    if not sections:
        return "Bottleneck report: no attributable groups"
    return "\n\n".join(sections)
