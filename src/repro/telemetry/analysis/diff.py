"""Trace diffing: align two runs, localize regressions, name the fault.

Usage::

    python -m repro.telemetry.analysis.diff BASE.json OTHER.json \
        [--json OUT.json] [--threshold SECONDS] [--top N] \
        [--results ARCHIVE.json]

Both inputs are exported Chrome traces. Runs align by **identity**:
groups pair by name, step windows pair by step number, and each paired
window diffs bucket-by-bucket (via the same exact-partition attribution
the bottleneck report uses). A window whose time moved more than
``--threshold`` becomes a regression (or improvement) entry whose
largest-moving buckets localize *what* changed — and any outage track
active in that window names the flapped link directly.

``--results`` points at a ``--save`` archive of the regressed run;
its ``fault_summary`` rollups (flap / rejoin / degraded-step counts)
ride into the report so a "cross:rack1 stalled step 5" finding carries
the injected-churn context that explains it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.utils.format import format_table

from repro.telemetry.analysis.attribution import (
    RunAttribution,
    attribute_trace,
    load_chrome_trace,
    spans_from_chrome,
)

__all__ = ["diff_report", "diff_text", "main"]

DIFF_SCHEMA = "repro.trace-diff/v1"


def _outage_routes_by_window(data: dict) -> dict[str, list[tuple[float, float, str]]]:
    """Per group: outage intervals ``(start, end, route)`` in the trace."""
    outages: dict[str, list[tuple[float, float, str]]] = {}
    for span in spans_from_chrome(data):
        if span.track.startswith("outage:"):
            route = span.track[len("outage:"):]
            outages.setdefault(span.group, []).append(
                (span.start, span.end, route)
            )
    return outages


def _by_group(attributions: list[RunAttribution]) -> dict[str, RunAttribution]:
    return {attribution.group: attribution for attribution in attributions}


def _bucket_moves(
    base: dict[str, float], other: dict[str, float]
) -> list[dict]:
    """Per-bucket deltas, largest absolute move first."""
    moves = []
    for bucket in sorted(set(base) | set(other)):
        before = base.get(bucket, 0.0)
        after = other.get(bucket, 0.0)
        delta = after - before
        if delta != 0.0:
            moves.append(
                {"bucket": bucket, "base": before, "other": after, "delta": delta}
            )
    moves.sort(key=lambda move: -abs(move["delta"]))
    return moves


def diff_report(
    base_data: dict,
    other_data: dict,
    *,
    threshold: float = 1e-9,
    fault_summary: dict | None = None,
) -> dict:
    """Structured diff of two Chrome traces (``repro.trace-diff/v1``)."""
    base_by = _by_group(attribute_trace(base_data))
    other_by = _by_group(attribute_trace(other_data))
    other_outages = _outage_routes_by_window(other_data)
    base_outages = _outage_routes_by_window(base_data)
    groups = []
    for name in sorted(set(base_by) | set(other_by)):
        base = base_by.get(name)
        other = other_by.get(name)
        if base is None or other is None:
            groups.append(
                {
                    "group": name,
                    "only_in": "base" if other is None else "other",
                }
            )
            continue
        base_steps = {step.step: step for step in base.steps}
        other_steps = {step.step: step for step in other.steps}
        regressions = []
        for step in sorted(
            set(base_steps) | set(other_steps),
            key=lambda value: (value is None, value),
        ):
            before = base_steps.get(step)
            after = other_steps.get(step)
            if before is None or after is None:
                regressions.append(
                    {
                        "step": step,
                        "only_in": "base" if after is None else "other",
                    }
                )
                continue
            delta = after.total_seconds - before.total_seconds
            if abs(delta) <= threshold:
                continue
            # An outage window overlapping this step's (regressed)
            # window names the faulted link outright.
            flapped = sorted(
                {
                    route
                    for start, end, route in other_outages.get(name, [])
                    if start < after.end and end > after.start
                }
            )
            regressions.append(
                {
                    "step": step,
                    "base_seconds": before.total_seconds,
                    "other_seconds": after.total_seconds,
                    "delta_seconds": delta,
                    "buckets": _bucket_moves(before.buckets, after.buckets),
                    "outage_routes": flapped,
                }
            )
        new_outage_routes = sorted(
            {route for _, _, route in other_outages.get(name, [])}
            - {route for _, _, route in base_outages.get(name, [])}
        )
        groups.append(
            {
                "group": name,
                "base_seconds": base.total_seconds,
                "other_seconds": other.total_seconds,
                "delta_seconds": other.total_seconds - base.total_seconds,
                "new_outage_routes": new_outage_routes,
                "regressions": regressions,
            }
        )
    report = {"schema": DIFF_SCHEMA, "groups": groups}
    if fault_summary is not None:
        report["fault_summary"] = fault_summary
    return report


def _fault_summaries_from_archive(path) -> dict | None:
    """Merge the ``fault_summary`` rollups of a ``--save`` archive."""
    data = json.loads(Path(path).read_text())
    results = data.get("results", data) if isinstance(data, dict) else data
    summaries = [
        result.get("fault_summary")
        for result in results
        if isinstance(result, dict) and result.get("fault_summary")
    ]
    if not summaries:
        return None
    merged: dict = {}
    for summary in summaries:
        for key, value in summary.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                merged[key] = merged.get(key, 0) + value
            else:
                merged[key] = value
    return merged


def diff_text(report: dict, *, top: int = 5) -> str:
    """Human-readable rendering of a :func:`diff_report`."""
    sections = []
    for group in report.get("groups", []):
        name = group["group"]
        if "only_in" in group:
            sections.append(f"{name}: only present in {group['only_in']} trace")
            continue
        delta = group["delta_seconds"]
        header = (
            f"{name}: {group['base_seconds']:.6f} s -> "
            f"{group['other_seconds']:.6f} s ({delta:+.6f} s)"
        )
        if group["new_outage_routes"]:
            header += (
                "; new outages on " + ", ".join(group["new_outage_routes"])
            )
        rows = []
        for entry in group["regressions"][:top]:
            if "only_in" in entry:
                rows.append(
                    [str(entry["step"]), f"only in {entry['only_in']}", "", ""]
                )
                continue
            moves = entry["buckets"]
            blame = (
                f"{moves[0]['bucket']} {moves[0]['delta']:+.6f}" if moves else ""
            )
            if entry["outage_routes"]:
                blame += " [outage: " + ", ".join(entry["outage_routes"]) + "]"
            rows.append(
                [
                    str(entry["step"]),
                    f"{entry['base_seconds']:.6f}",
                    f"{entry['delta_seconds']:+.6f}",
                    blame,
                ]
            )
        if rows:
            sections.append(
                header
                + "\n"
                + format_table(
                    ["Step", "Base s", "Delta s", "Largest mover"], rows
                )
            )
        else:
            sections.append(header + " (no per-step moves above threshold)")
    fault = report.get("fault_summary")
    if fault:
        pairs = ", ".join(f"{key}={value}" for key, value in sorted(fault.items()))
        sections.append(f"Fault summary of the regressed run: {pairs}")
    if not sections:
        return "Trace diff: nothing to compare"
    return "\n\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", metavar="BASE.json", type=Path)
    parser.add_argument("other", metavar="OTHER.json", type=Path)
    parser.add_argument(
        "--json", metavar="OUT.json", default=None,
        help="also write the structured diff report",
    )
    parser.add_argument(
        "--threshold", type=float, default=1e-9, metavar="SECONDS",
        help="ignore per-step moves at or below this (default 1e-9)",
    )
    parser.add_argument(
        "--top", type=int, default=5,
        help="regressed steps listed per group (default 5)",
    )
    parser.add_argument(
        "--results", metavar="ARCHIVE.json", default=None,
        help="--save archive of the regressed run; its fault_summary "
        "rollup rides into the report",
    )
    args = parser.parse_args(argv)
    fault_summary = None
    if args.results is not None:
        fault_summary = _fault_summaries_from_archive(args.results)
    report = diff_report(
        load_chrome_trace(args.base),
        load_chrome_trace(args.other),
        threshold=args.threshold,
        fault_summary=fault_summary,
    )
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n")
    print(diff_text(report, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
