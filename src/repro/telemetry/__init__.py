"""Telemetry: metrics registry + span tracing + timeline exporters.

One :class:`Telemetry` session bundles the two instruments a run needs —
a :class:`~repro.telemetry.metrics.MetricsRegistry` for labeled
counters/gauges/histograms and a :class:`~repro.telemetry.tracing.Tracer`
for simulated- and wall-clock spans — plus per-step registry snapshots
for the JSONL exporter. The engine, the network simulators, and the
harness all report through this seam; exporters in
:mod:`repro.telemetry.export` turn a session into a Perfetto-loadable
Chrome trace, JSONL metric rows, or a text summary.

``NULL_TELEMETRY`` is the shared disabled session: every instrument it
hands out is a no-op, so instrumented code paths can hold an
unconditional reference and stay overhead-free when telemetry is off.

The :mod:`repro.telemetry.analysis` subpackage consumes what this layer
records: critical-path attribution and bottleneck reports, trace
diffing, and live Prometheus/NDJSON exposition.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    series_key,
)
from repro.telemetry.tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Span",
    "Telemetry",
    "Tracer",
    "series_key",
]


class Telemetry:
    """Per-run telemetry session: registry + tracer + step snapshots."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)
        self.step_snapshots: list[dict] = []

    def snapshot_step(self, **meta) -> None:
        """Capture the registry state as one JSONL row (cumulative
        totals at this step, plus caller-supplied metadata)."""
        if not self.enabled:
            return
        self.step_snapshots.append({**meta, "metrics": self.registry.snapshot()})

    def summary(self) -> dict:
        """JSON-ready rollup: metric totals plus per-track span stats.

        This is what rides on ``RunResult.telemetry_summary`` and
        round-trips through ``results_io``.
        """
        snapshot = self.registry.snapshot()
        span_stats: dict[str, dict] = {}
        for (group, track), busy in sorted(self.tracer.busy_seconds().items()):
            span_stats[f"{group}/{track}"] = {"count": 0, "busy_seconds": busy}
        for span in self.tracer.spans:
            span_stats[f"{span.group}/{span.track}"]["count"] += 1
        return {
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "spans": span_stats,
        }


NULL_TELEMETRY = Telemetry(enabled=False)
