"""Span tracing over simulated and wall clocks.

A :class:`Span` is a closed interval on some track's timeline. Tracks
are named per worker / link / rack ("worker0", "link:cross", "server")
and grouped per emitting component ("engine", "sim:10Mbps"), which maps
one-to-one onto Chrome trace_event processes (groups) and threads
(tracks) in the exporter.

Two clock disciplines coexist:

* **Simulated clocks** — the engine's virtual step layout and the
  network simulators' replay clocks. These emit *completed* spans via
  :meth:`Tracer.span` with explicit start/end floats (seconds on the
  emitter's virtual timeline; the simulators add their own
  ``trace_offset`` so multi-step runs lay out contiguously).
* **Wall clocks** — harness-level phases (training, simulation) wrap
  real work in :meth:`Tracer.wall`, a context manager measuring
  ``perf_counter`` deltas relative to the tracer's first wall-clock use.

``begin``/``end`` keep a per-track stack so unbalanced instrumentation
is detectable: :meth:`check_closed` raises (and the exporters call it),
which is what the CI smoke's "fail on unclosed spans" check leans on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["NULL_TRACER", "Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    group: str
    track: str
    name: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans; disabled instances ignore every call."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.spans: list[Span] = []
        self._open: dict[tuple[str, str], list[tuple[str, float, dict]]] = {}
        self._wall_origin: float | None = None

    def span(
        self,
        group: str,
        track: str,
        name: str,
        start: float,
        end: float,
        **args,
    ) -> None:
        """Record a completed span with explicit (simulated) timestamps."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(
                f"span {group}/{track}/{name} ends before it starts "
                f"({end} < {start})"
            )
        self.spans.append(Span(group, track, name, start, end, args))

    def begin(
        self,
        group: str,
        track: str,
        name: str,
        start: float | None = None,
        **args,
    ) -> None:
        """Open a nested span; ``start=None`` stamps the wall clock."""
        if not self.enabled:
            return
        if start is None:
            start = self._wall_now()
        self._open.setdefault((group, track), []).append((name, start, args))

    def end(self, group: str, track: str, end: float | None = None) -> None:
        """Close the innermost open span on ``(group, track)``."""
        if not self.enabled:
            return
        stack = self._open.get((group, track))
        if not stack:
            raise RuntimeError(f"end() on {group}/{track} with no open span")
        if end is None:
            end = self._wall_now()
        name, start, args = stack.pop()
        self.spans.append(Span(group, track, name, start, end, args))

    @contextmanager
    def wall(self, group: str, track: str, name: str, **args):
        """Wall-clock span around real work (perf_counter deltas)."""
        if not self.enabled:
            yield
            return
        self.begin(group, track, name, **args)
        try:
            yield
        finally:
            self.end(group, track)

    def _wall_now(self) -> float:
        now = time.perf_counter()
        if self._wall_origin is None:
            self._wall_origin = now
        return now - self._wall_origin

    def open_spans(self) -> list[str]:
        """Human-readable ``group/track/name`` of every unclosed span."""
        return [
            f"{group}/{track}/{name}"
            for (group, track), stack in sorted(self._open.items())
            for (name, _, _) in stack
        ]

    def check_closed(self) -> None:
        """Raise if any begin() never saw its end() — exporters call this."""
        dangling = self.open_spans()
        if dangling:
            raise RuntimeError(f"unclosed spans: {', '.join(dangling)}")

    def busy_seconds(self) -> dict[tuple[str, str], float]:
        """Total span duration per (group, track) — the trace's own
        occupancy accounting, comparable against simulator link_busy."""
        busy: dict[tuple[str, str], float] = {}
        for span in self.spans:
            key = (span.group, span.track)
            busy[key] = busy.get(key, 0.0) + span.duration
        return busy


NULL_TRACER = Tracer(enabled=False)
