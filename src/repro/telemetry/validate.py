"""Schema check for exported Chrome traces (the CI telemetry gate).

Usage::

    python -m repro.telemetry.validate trace.json [more.json ...]

Validates the ``traceEvents`` object format structurally — required
keys, known phases, non-negative microsecond timestamps/durations — and
fails on unclosed spans: every ``"B"`` begin event must have a matching
``"E"`` end on the same ``(pid, tid)`` track. (Our own exporter only
emits complete ``"X"`` events and refuses to export a tracer with
dangling ``begin()`` calls, so this doubles as an end-to-end check that
nothing upstream leaked an open span into the file.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "validate_chrome_trace"]

_REQUIRED_KEYS = ("name", "ph", "pid", "tid")
_KNOWN_PHASES = frozenset("XMBEiC")


def validate_chrome_trace(data) -> list[str]:
    """Return a list of schema violations (empty means valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")
    open_stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in event]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase in ("X", "B", "E", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad 'ts' {ts!r} (want number >= 0)")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad 'dur' {dur!r} (want number >= 0)")
        elif phase == "B":
            open_stacks.setdefault((event["pid"], event["tid"]), []).append(
                str(event["name"])
            )
        elif phase == "E":
            stack = open_stacks.get((event["pid"], event["tid"]))
            if not stack:
                errors.append(f"{where}: 'E' event with no open 'B' span")
            else:
                stack.pop()
    for (pid, tid), stack in sorted(open_stacks.items()):
        for name in stack:
            errors.append(f"unclosed span {name!r} on pid={pid} tid={tid}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", metavar="TRACE.json", type=Path)
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            print(f"{path}: unreadable trace: {error}")
            status = 1
            continue
        errors = validate_chrome_trace(data)
        if errors:
            status = 1
            print(f"{path}: INVALID ({len(errors)} problems)")
            for error in errors:
                print(f"  - {error}")
        else:
            events = data["traceEvents"]
            spans = sum(1 for event in events if event.get("ph") == "X")
            print(f"{path}: ok ({len(events)} events, {spans} spans)")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
