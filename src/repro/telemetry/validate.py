"""Schema check for exported Chrome traces (the CI telemetry gate).

Usage::

    python -m repro.telemetry.validate [--strict] trace.json [more.json ...]

Validates the ``traceEvents`` object format structurally — required
keys, known phases, non-negative microsecond timestamps/durations — and
fails on unclosed spans: every ``"B"`` begin event must have a matching
``"E"`` end on the same ``(pid, tid)`` track. (Our own exporter only
emits complete ``"X"`` events and refuses to export a tracer with
dangling ``begin()`` calls, so this doubles as an end-to-end check that
nothing upstream leaked an open span into the file.)

``--strict`` adds per-track discipline checks: overlapping complete
spans on one ``(pid, tid)`` track, and ``"X"`` timestamps that go
backwards in file order on one track. Strict stays **opt-in** because
some legitimate tracks interleave concurrent work (e.g. a shared
server track serving several racks), and emission order within a
replayed step follows schedule order, not strictly time order.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "validate_chrome_trace"]

_REQUIRED_KEYS = ("name", "ph", "pid", "tid")
_KNOWN_PHASES = frozenset("XMBEiC")


#: Overlap slack in microseconds: spans touching at a shared boundary
#: (end == next start) are not overlapping.
_STRICT_OVERLAP_SLACK_US = 1e-3


def validate_chrome_trace(data, *, strict: bool = False) -> list[str]:
    """Return a list of schema violations (empty means valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")
    complete: dict[tuple, list[tuple[float, float, str, int]]] = {}
    last_ts: dict[tuple, tuple[float, int]] = {}
    open_stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in event]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase in ("X", "B", "E", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad 'ts' {ts!r} (want number >= 0)")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad 'dur' {dur!r} (want number >= 0)")
            elif strict and isinstance(event.get("ts"), (int, float)):
                track = (event["pid"], event["tid"])
                ts = float(event["ts"])
                complete.setdefault(track, []).append(
                    (ts, ts + float(dur), str(event["name"]), index)
                )
                prev = last_ts.get(track)
                if prev is not None and ts < prev[0]:
                    errors.append(
                        f"{where}: out-of-order 'ts' {ts:g} on "
                        f"pid={track[0]} tid={track[1]} (follows "
                        f"traceEvents[{prev[1]}] at ts {prev[0]:g})"
                    )
                last_ts[track] = (ts, index)
        elif phase == "B":
            open_stacks.setdefault((event["pid"], event["tid"]), []).append(
                str(event["name"])
            )
        elif phase == "E":
            stack = open_stacks.get((event["pid"], event["tid"]))
            if not stack:
                errors.append(f"{where}: 'E' event with no open 'B' span")
            else:
                stack.pop()
    for (pid, tid), stack in sorted(open_stacks.items()):
        for name in stack:
            errors.append(f"unclosed span {name!r} on pid={pid} tid={tid}")
    if strict:
        for (pid, tid), spans in sorted(complete.items()):
            spans.sort()
            for (s0, e0, n0, i0), (s1, e1, n1, i1) in zip(spans, spans[1:]):
                if s1 < e0 - _STRICT_OVERLAP_SLACK_US:
                    errors.append(
                        f"overlapping spans on pid={pid} tid={tid}: "
                        f"{n0!r} (traceEvents[{i0}], ends {e0:g}) overlaps "
                        f"{n1!r} (traceEvents[{i1}], starts {s1:g})"
                    )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", metavar="TRACE.json", type=Path)
    parser.add_argument(
        "--strict", action="store_true",
        help="also flag overlapping spans and backwards timestamps "
        "per track (opt-in: concurrent shared tracks overlap "
        "legitimately)",
    )
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            print(f"{path}: unreadable trace: {error}")
            status = 1
            continue
        errors = validate_chrome_trace(data, strict=args.strict)
        if errors:
            status = 1
            print(f"{path}: INVALID ({len(errors)} problems)")
            for error in errors:
                print(f"  - {error}")
        else:
            events = data["traceEvents"]
            spans = sum(1 for event in events if event.get("ph") == "X")
            print(f"{path}: ok ({len(events)} events, {spans} spans)")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
