"""The wire-plan layer: how a topology frames small tensors on the wire.

PR 1's fused-bucket hot path was hard-wired into the single-server BSP
path: the engine built an unpartitioned
:class:`~repro.compression.fusion.FusionPlan` and every other topology
rejected ``--fuse``. This module promotes the plan to a first-class object
the *topology* owns: :func:`build_wire_plan` asks the topology for its
partition function (:meth:`~repro.exchange.topology.ExchangeTopology.fusion_partition`)
— which shard owns each tensor, which uplink a hierarchical aggregate
crosses — and builds a partition-aware plan whose buckets never span a
wire destination. Every point-to-point topology then exchanges one
:class:`~repro.core.packets.FusedWireMessage` per bucket per destination,
the engine's per-worker fused pull streams replay under async/SSP, and the
simulator schedules the fused frames like any other record.

The compatibility rules live here too, as *data* (one message per illegal
combination), so the CLI can reject bad flag sets at parse time with the
same words the engine uses at construction time.
"""

from __future__ import annotations

from repro.compression.fusion import FusionPlan, build_fusion_plan

__all__ = ["build_wire_plan", "fusion_incompatibility"]


def fusion_incompatibility(
    topology: str, *, racks: int | None = None
) -> str | None:
    """Why fused buckets cannot run on this configuration, or ``None``.

    Shared by :class:`~repro.exchange.engine.EngineConfig` validation and
    the CLI's parse-time checks so both fail with identical, actionable
    wording. Fusion composes with every sync mode (BSP shared pulls,
    async/SSP per-worker fused pull streams), so only topology shape can
    rule it out:

    * the flat ring exchanges raw gradients per hop — there is no
      point-to-point framing to fuse;
    * a one-rack hierarchical run degenerates to that same ring (no
      cross-rack tier exists, so no uplink to frame fused buckets on).
    """
    if topology == "ring":
        return (
            "the ring exchanges raw gradients per hop; fused buckets only "
            "apply to point-to-point push/pull framing"
        )
    if topology == "hier" and racks is not None and racks < 2:
        return (
            "a one-rack hierarchical run is a plain ring collective with "
            "no cross-rack uplink; fused buckets need >= 2 racks"
        )
    return None


def build_wire_plan(
    topology,
    shapes: dict[str, tuple[int, ...]],
    *,
    threshold: int,
    bucket_elements: int,
    lossy: bool = False,
    boundaries: frozenset[str] | None = None,
) -> FusionPlan | None:
    """Build the topology's partition-aware fusion plan, or ``None``.

    ``topology`` is an :class:`~repro.exchange.topology.ExchangeTopology`;
    its :meth:`fusion_partition` supplies the tensor → destination map the
    buckets must respect (``None`` for single-destination topologies).
    Returns ``None`` when no tensor falls below the threshold — the
    engine's "fusion effectively off" convention.
    """
    if not topology.supports_fusion:
        raise ValueError(
            f"topology {topology.name!r} does not support the fused-bucket "
            "path"
        )
    partition = topology.fusion_partition(
        {name: _size(shape) for name, shape in shapes.items()}
    )
    plan = build_fusion_plan(
        shapes,
        threshold=threshold,
        bucket_elements=bucket_elements,
        partition=partition,
        lossy=lossy,
        boundaries=boundaries,
    )
    return plan if plan.buckets else None


def _size(shape: tuple[int, ...]) -> int:
    count = 1
    for dim in shape:
        count *= int(dim)
    return count
