"""The unified exchange engine: one trainer, any topology × sync mode.

Historically the repository re-implemented the paper's point-to-point
design three times — the BSP :class:`~repro.distributed.cluster.Cluster`,
the async/SSP :class:`~repro.distributed.async_cluster.AsyncCluster`, and
the sharded/all-reduce paths — each with its own worker construction,
per-tensor compress/decompress fan-out, and traffic accounting.
:class:`ExchangeEngine` folds them into one engine parameterized by an
:class:`~repro.exchange.topology.ExchangeTopology` (where state changes
travel) and a :class:`~repro.exchange.sync.SyncMode` (when they travel).
The legacy classes survive as thin facades, and the BSP single-server path
is op-for-op identical to the seed implementation (the parity tests in
``tests/exchange`` assert bit-identical loss trajectories and wire bytes).

On top of the unified paths sits the **wire-plan layer**
(``fuse_small_tensors=True``, :mod:`repro.exchange.wireplan`):
below-threshold tensors are flattened into capacity-bounded buckets —
partitioned so no bucket spans a shard or rack-uplink boundary —
compressed with one codec call per bucket (exact float32 bypass, or the
scheme's own codec with one shared scale under ``fuse_lossy``), and framed
as one :class:`~repro.core.packets.FusedWireMessage` per bucket per
destination. Async/SSP modes pull fused deltas through per-worker fused
pull streams, and the recorded event streams carry the fused frames for
the simulators to replay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.compression.base import Compressor
from repro.compression.fusion import (
    FusedBucketContext,
    FusionPlan,
    compress_fused_batch,
)
from repro.data.augment import Augmenter
from repro.data.batcher import ShardBatcher
from repro.data.synthetic import SyntheticImageDataset
from repro.distributed.barriers import FullBarrier, StragglerSpec
from repro.distributed.defaults import FUSION_BUCKET_ELEMENTS, SMALL_TENSOR_THRESHOLD
from repro.distributed.faults import FaultSpec
from repro.distributed.worker import Worker
from repro.exchange.sync import BSPMode, SyncMode, make_sync_mode
from repro.exchange.topology import (
    ExchangeTopology,
    HierarchicalExchangeService,
    make_topology,
)
from repro.exchange.wireplan import build_wire_plan, fusion_incompatibility
from repro.netsim.events import StepTransmissions, TransmissionRecord, UpdateTransmissions
from repro.network.traffic import StepTraffic, TrafficMeter
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.nn.loss import SoftmaxCrossEntropy, accuracy
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.optimizer import MomentumSGD
from repro.nn.schedule import Schedule
from repro.utils.seeding import SeedSequenceFactory

__all__ = ["EngineConfig", "ExchangeEngine", "EvalResult", "StepLog"]


@dataclass(frozen=True)
class EngineConfig:
    """Static configuration of a unified exchange engine.

    The cluster-shape attributes mirror the paper's setup (§5.2); the
    ``topology`` / ``sync_mode`` pair selects the exchange plan, and the
    fusion knobs switch on the fused-bucket hot path.
    """

    num_workers: int = 4
    batch_size: int = 32
    shard_size: int = 512
    momentum: float = 0.9
    weight_decay: float = 1e-4
    small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD
    augment_pad: int = 2
    seed: int = 0
    #: Exchange plan: "single" | "sharded" | "ring" | "hier".
    topology: str = "single"
    #: Synchronization: "bsp" | "async" | "ssp".
    sync_mode: str = "bsp"
    #: Hierarchical topology shape: ``racks`` contiguous racks of
    #: ``rack_size`` workers (must multiply to ``num_workers``); the
    #: cross-rack tier reuses the single-server or sharded service.
    racks: int = 2
    rack_size: int = 2
    hier_upper: str = "single"
    #: Backup workers (paper §2.1, BSP only): a global step proceeds once
    #: ``num_workers - backup_workers`` pushes arrive; the rest are dropped.
    backup_workers: int = 0
    #: SSP staleness bound (required for sync_mode="ssp").
    staleness: int | None = None
    #: Server count for the sharded topology.
    num_shards: int = 2
    #: Per-step compute-time jitter / straggler injection (None = uniform).
    straggler: StragglerSpec | None = None
    #: Deterministic churn scenario (worker crashes/restarts/departures
    #: under a parameter service; rack uplink flaps under "hier"). BSP
    #: only: the barrier is where membership changes are decided.
    fault: FaultSpec | None = None
    #: Fused-bucket hot path: pack small tensors into buckets and compress
    #: each bucket with a single codec call. Composes with every
    #: point-to-point topology (partition-aware plans keep buckets inside
    #: shard and rack-uplink boundaries) and every sync mode (async/SSP
    #: runs per-worker fused pull streams).
    fuse_small_tensors: bool = False
    #: Bucket capacity in elements for the fusion plan.
    bucket_elements: int = FUSION_BUCKET_ELEMENTS
    #: Lossy fused buckets: run the scheme's own codec once over each
    #: concatenated bucket (one shared quantization scale per bucket)
    #: instead of the exact float32 bypass. Requires ``fuse_small_tensors``.
    fuse_lossy: bool = False
    #: Parameter names that force-close the open fusion bucket before
    #: packing them (per-layer bucket boundaries for the plan tuner).
    bucket_boundaries: tuple[str, ...] = ()
    #: Record transmission plans for the discrete-event network simulator.
    #: BSP steps append per-step plans to ``ExchangeEngine.transmissions``;
    #: async/SSP modes append per-update event streams (push/pull records
    #: with logical timestamps and observed staleness) to
    #: ``ExchangeEngine.update_events``. Off by default.
    record_transmissions: bool = False
    #: Replace *measured* per-batch compute time with this constant for
    #: scheduling (virtual clocks, barrier arrivals) and recording.
    #: Wall-clock compute noise otherwise makes async scheduling orders
    #: run-dependent; tests that golden-trace an event stream pin this.
    fixed_compute_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.shard_size < self.batch_size:
            raise ValueError("shard_size must be >= batch_size")
        if not (0 <= self.backup_workers < self.num_workers):
            raise ValueError("backup_workers must be in [0, num_workers)")
        if self.staleness is not None and self.staleness < 0:
            raise ValueError("staleness must be >= 0 or None")
        if self.bucket_elements < 1:
            raise ValueError("bucket_elements must be >= 1")
        if self.fuse_lossy and not self.fuse_small_tensors:
            raise ValueError(
                "fuse_lossy selects the codec mode of the fused-bucket "
                "path; it requires fuse_small_tensors=True"
            )
        if self.bucket_boundaries and not self.fuse_small_tensors:
            raise ValueError(
                "bucket_boundaries shape the fused-bucket packing; they "
                "require fuse_small_tensors=True"
            )
        if self.fuse_small_tensors:
            reason = fusion_incompatibility(
                self.topology,
                racks=self.racks if self.topology == "hier" else None,
            )
            if reason is not None:
                raise ValueError(reason)
        if self.fixed_compute_seconds is not None and self.fixed_compute_seconds <= 0:
            raise ValueError("fixed_compute_seconds must be > 0 or None")
        if self.topology == "hier":
            if self.racks < 1:
                raise ValueError(f"racks must be >= 1, got {self.racks}")
            if self.rack_size < 2:
                raise ValueError(
                    f"a rack ring needs >= 2 workers, got rack_size={self.rack_size}"
                )
            if self.racks * self.rack_size != self.num_workers:
                raise ValueError(
                    f"num_workers={self.num_workers} is not divisible into "
                    f"{self.racks} racks of {self.rack_size} "
                    "(racks * rack_size must equal num_workers)"
                )
            if self.sync_mode in ("async", "ssp") and self.racks < 2:
                raise ValueError(
                    "async/SSP hierarchical runs need >= 2 racks; one rack "
                    "has no cross-rack tier to relax"
                )
        if self.fault is not None and not self.fault.empty:
            if self.sync_mode != "bsp":
                raise ValueError(
                    "fault injection is BSP-only (the barrier is where "
                    f"membership changes are decided); got sync_mode="
                    f"{self.sync_mode!r}"
                )
            if self.fault.crashes:
                if self.topology not in ("single", "sharded"):
                    raise ValueError(
                        "worker crash/restart faults need a parameter-"
                        "service topology (single or sharded) — a ring "
                        "reduction needs every node's chunk and a rack "
                        "ring needs every member; got topology="
                        f"{self.topology!r}"
                    )
                for crash in self.fault.crashes:
                    if crash.worker >= self.num_workers:
                        raise ValueError(
                            f"crash worker {crash.worker} out of range for "
                            f"{self.num_workers} workers"
                        )
            if self.fault.flaps:
                if self.topology != "hier":
                    raise ValueError(
                        "uplink flap faults model a rack losing its cross-"
                        "rack uplink; they require topology='hier', got "
                        f"{self.topology!r}"
                    )
                if self.racks < 2:
                    raise ValueError(
                        "uplink flap faults need >= 2 racks; one rack has "
                        "no uplink to lose"
                    )
                for flap in self.fault.flaps:
                    if flap.rack >= self.racks:
                        raise ValueError(
                            f"flap rack {flap.rack} out of range for "
                            f"{self.racks} racks"
                        )


@dataclass(frozen=True)
class EvalResult:
    """Global-model evaluation snapshot."""

    step: int
    test_accuracy: float
    test_loss: float


@dataclass
class StepLog:
    """Per-step training telemetry."""

    step: int
    train_loss: float
    learning_rate: float


class ExchangeEngine:
    """A simulated distributed trainer over pluggable exchange plans.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh model ``Module``. Called
        once per worker plus once for evaluation; every instance must
        produce identical initial parameters (use a fixed seed inside).
    dataset:
        Source of per-worker shards and the held-out test set.
    scheme:
        Compression scheme applied to pushes and pulls (per hop on a ring).
    schedule:
        Learning-rate schedule (already worker-scaled where applicable).
    config:
        Engine shape, topology, sync mode, and hyperparameters.
    """

    def __init__(
        self,
        model_factory,
        dataset: SyntheticImageDataset,
        scheme: Compressor,
        schedule: Schedule,
        config: EngineConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
    ):
        config = config or EngineConfig()
        self.engine_config = config
        self.dataset = dataset
        self.scheme = scheme
        self.seeds = SeedSequenceFactory(config.seed)
        #: Telemetry session (metrics + spans); the shared disabled
        #: singleton when None, so hot paths gate on one bool.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Virtual clock laying synchronous steps end to end on the
        # telemetry timeline (async modes reuse the per-unit clocks).
        self._tel_clock = 0.0

        self.sync: SyncMode = make_sync_mode(
            config.sync_mode,
            backup_workers=config.backup_workers,
            staleness=config.staleness,
        )
        self.topology: ExchangeTopology = make_topology(
            config.topology,
            num_shards=config.num_shards,
            racks=config.racks,
            rack_size=config.rack_size,
            hier_upper=config.hier_upper,
        )
        if not self.topology.supports_event_modes and not isinstance(
            self.sync, BSPMode
        ):
            raise ValueError(
                f"topology {self.topology.name!r} is a synchronous collective; "
                f"it cannot run under sync mode {self.sync.name!r}"
            )
        if self.topology.wants_raw_gradients and config.backup_workers:
            raise ValueError(
                "a ring reduction needs every node's chunk; backup workers "
                "only apply to parameter-server topologies"
            )

        reference_model = model_factory()
        # The wire plan: the topology partitions below-threshold tensors
        # into buckets that never span a wire destination (shard, rack
        # uplink); None when fusion is off or no tensor qualifies.
        self.fusion_plan: FusionPlan | None = None
        if config.fuse_small_tensors:
            self.fusion_plan = build_wire_plan(
                self.topology,
                {p.name: p.shape for p in reference_model.parameters()},
                threshold=config.small_tensor_threshold,
                bucket_elements=config.bucket_elements,
                lossy=config.fuse_lossy,
                boundaries=frozenset(config.bucket_boundaries),
            )

        self.workers: list[Worker] = []
        for worker_id in range(config.num_workers):
            model = model_factory()
            # All replicas start from identical weights.
            model.load_state_dict(reference_model.state_dict())
            images, labels = dataset.train_shard(worker_id, config.shard_size)
            batcher = ShardBatcher(
                images,
                labels,
                config.batch_size,
                self.seeds.rng(self.sync.batch_stream, worker_id),
            )
            augmenter = Augmenter(
                self.seeds.rng(self.sync.augment_stream, worker_id),
                pad=config.augment_pad,
            )
            self.workers.append(
                Worker(
                    worker_id,
                    model,
                    batcher,
                    augmenter,
                    scheme,
                    small_tensor_threshold=config.small_tensor_threshold,
                    fusion_plan=self.fusion_plan,
                    # Collectives compress per hop; skip the (model-sized)
                    # per-worker push-context allocation entirely.
                    push_compression=not self.topology.wants_raw_gradients,
                )
            )

        def optimizer_factory() -> MomentumSGD:
            return MomentumSGD(config.momentum, config.weight_decay)

        self.service = self.topology.build_service(
            reference_model.parameters(),
            optimizer_factory,
            schedule,
            scheme,
            num_workers=self.sync.service_worker_slots(config.num_workers),
            small_tensor_threshold=config.small_tensor_threshold,
            fusion_plan=self.fusion_plan,
        )
        self._eval_model = model_factory()
        self.barrier = (
            self.sync.make_barrier(config.num_workers)
            if isinstance(self.sync, BSPMode)
            else None
        )
        if (
            config.record_transmissions
            and not self.sync.synchronous
            and scheme.defers_transmission
        ):
            raise ValueError(
                f"scheme defers transmissions, but recording "
                f"{self.sync.name!r} event streams needs a push every "
                "update; drop deferring schemes from async/SSP sweeps"
            )
        self.traffic = TrafficMeter()
        #: Per-step transmission plans for the network simulator (filled
        #: only when ``record_transmissions`` is on and the mode is BSP).
        self.transmissions: list[StepTransmissions] = []
        #: Per-update event streams for the event-driven simulator (filled
        #: only when ``record_transmissions`` is on and the mode is
        #: async/SSP).
        self.update_events: list[UpdateTransmissions] = []
        self._routes: dict[str, str] = (
            self.topology.transmission_routes(self.service)
            if config.record_transmissions
            else {}
        )
        self.step_logs: list[StepLog] = []
        self._test_cache: tuple[np.ndarray, np.ndarray] | None = None
        self.update_count = 0

        # -- fault-injection state (BSP only; validated in EngineConfig) ----
        fault = config.fault
        self._fault = fault if fault is not None and not fault.empty else None
        #: Chronological churn events: crash / restart / departure / flap /
        #: rejoin dicts, each tagged with the step it happened at.
        self.fault_log: list[dict] = []
        # Worker churn: wid -> step it may rejoin at; entries present mean
        # the worker is down *this* step once `_apply_worker_faults` ran.
        self._down_until: dict[int, int] = {}
        self._departed: set[int] = set()
        self._restart_counts: dict[int, int] = {}
        # Crash-time error-feedback checkpoints, restored on rejoin.
        self._checkpoints: dict[int, dict] = {}
        self._pristine: dict[int, dict] = {}
        # Rack churn (hier): rack -> rejoin step, banked outage gradients,
        # and the rejoin step's link-down floor.
        self._rack_down_until: dict[int, int] = {}
        self._rack_backlog: dict[int, dict[str, np.ndarray]] = {}
        self._rack_rejoin_delay: dict[int, float] = {}
        self._fault_counters = {"resync_bytes": 0, "degraded_steps": 0}
        if self._fault is not None:
            for crash in self._fault.crashes:
                if crash.worker not in self._pristine:
                    # Zero-residual snapshot taken at init: a crash wipes
                    # the worker's in-memory error feedback, so its live
                    # contexts reset to this until recovery restores the
                    # crash-time checkpoint.
                    self._pristine[crash.worker] = self.workers[
                        crash.worker
                    ].snapshot_state()

        # Event-driven state (async / SSP modes). The scheduling unit is
        # one worker — or one *rack* under the hierarchical topology,
        # which is synchronous inside a rack and asynchronous across
        # racks (racks push their ring-reduced aggregate independently).
        if not self.sync.synchronous:
            prefix = self.sync.pull_key_prefix
            units = (
                list(range(config.racks))
                if self._is_hierarchical
                else [worker.worker_id for worker in self.workers]
            )
            fused_names = (
                self.fusion_plan.fused_names
                if self.fusion_plan is not None
                else frozenset()
            )
            self._pull_contexts = {
                unit: {
                    name: (
                        scheme.make_bypass_context(
                            param.shape, key=(prefix, unit, name)
                        )
                        if name in self.service.bypassed
                        else scheme.make_context(
                            param.shape, key=(prefix, unit, name)
                        )
                    )
                    for name, param in self.service.params.items()
                    if name not in fused_names
                }
                for unit in units
            }
            # Per-unit fused pull streams: each worker (or rack) decodes
            # its own fused delta buckets — one frame per bucket per
            # update, compressed through a personal error-feedback
            # context, exactly as the per-tensor pull stream works.
            self._fused_pull_contexts: dict[int, dict[int, FusedBucketContext]] = {
                unit: (
                    {
                        bucket.index: scheme.make_fused_context(
                            bucket,
                            key=(f"{prefix}-fused", unit, bucket.index),
                            lossy=self.fusion_plan.lossy,
                        )
                        for bucket in self.fusion_plan.buckets
                    }
                    if self.fusion_plan is not None
                    else {}
                )
                for unit in units
            }
            # Global state at each unit's last pull: the pull context is
            # fed only the increment since then; its own error buffer
            # carries whatever compression deferred.
            self._last_global = {
                unit: self.service.state_dict() for unit in units
            }
            self._clock = {unit: 0.0 for unit in units}
            self._local_steps = {unit: 0 for unit in units}
            # Global model version each unit last pulled: the commit-time
            # gap to it is the update's observed staleness.
            self._pull_step = {unit: 0 for unit in units}

    # -- properties --------------------------------------------------------

    @property
    def global_step(self) -> int:
        return self.service.global_step

    @property
    def _is_hierarchical(self) -> bool:
        return isinstance(self.service, HierarchicalExchangeService)

    def _model_elements(self) -> int:
        return sum(p.size for p in self.service.params.values())

    def _rack_workers(self, rack: int) -> list[Worker]:
        """The contiguous worker group forming one rack."""
        size = self.engine_config.rack_size
        return self.workers[rack * size : (rack + 1) * size]

    # -- training ----------------------------------------------------------

    def train_step(self) -> StepLog:
        """Run one scheduling quantum: a full BSP step, or one async update."""
        if not self.sync.synchronous:
            log = (
                self._hier_async_update()
                if self._is_hierarchical
                else self._async_update()
            )
        elif self._is_hierarchical:
            log = self._hier_step()
        elif self.topology.wants_raw_gradients:
            log = self._ring_step()
        else:
            log = self._ps_step()
        self.step_logs.append(log)
        return log

    def train(
        self, steps: int, *, eval_every: int | None = None, test_size: int = 1000
    ) -> list[EvalResult]:
        """Run ``steps`` quanta, optionally evaluating along the way."""
        evals: list[EvalResult] = []
        for _ in range(steps):
            self.train_step()
            if eval_every and self.global_step % eval_every == 0:
                # Call the engine's evaluate explicitly: facades may narrow
                # evaluate()'s return type (AsyncCluster returns a bare
                # accuracy float), but train() always collects EvalResults.
                evals.append(ExchangeEngine.evaluate(self, test_size=test_size))
        return evals

    def _compute_base(self, batch) -> float:
        """Compute seconds used for scheduling: measured, unless pinned."""
        fixed = self.engine_config.fixed_compute_seconds
        return fixed if fixed is not None else batch.compute_seconds

    def _arrivals(self, batches) -> dict[int, float]:
        """Straggler-scaled push-arrival times for the barrier.

        Down/departed workers carry a ``None`` batch (fault injection)
        and never arrive; with no faults every batch is present.
        """
        step = self.service.global_step
        straggler = self.engine_config.straggler
        return {
            worker.worker_id: self._compute_base(batches[i])
            * (straggler.multiplier(worker.worker_id, step) if straggler else 1.0)
            for i, worker in enumerate(self.workers)
            if batches[i] is not None
        }

    # -- fault injection ---------------------------------------------------

    def _barrier_decide(self, arrivals: dict[int, float]):
        """Barrier decision tolerant of a fault-shrunk arrival set.

        A backup-worker barrier demands ``num_workers - backup_workers``
        arrivals; when churn leaves fewer live workers the step degrades
        to waiting for everyone still alive instead of deadlocking.
        """
        required = getattr(self.barrier, "required", None)
        if required is not None and len(arrivals) < required:
            return FullBarrier().decide(arrivals)
        return self.barrier.decide(arrivals)

    def _apply_worker_faults(self, step: int) -> list[int]:
        """Process crash/restart events due at ``step``.

        Returns the workers rejoining this step with a full-model resync
        (checkpointed recovery only — the naive baseline restarts with a
        stale replica and transfers nothing).
        """
        resynced: list[int] = []
        fault = self._fault
        if fault is None:
            return resynced
        for worker in self.workers:
            wid = worker.worker_id
            if wid in self._departed:
                continue
            crash = fault.crash_at(wid, step)
            if crash is not None:
                self._crash_worker(worker, crash, step)
            elif wid in self._down_until and step >= self._down_until[wid]:
                del self._down_until[wid]
                if self._recover_worker(worker, step):
                    resynced.append(wid)
        return resynced

    def _crash_worker(self, worker: Worker, crash, step: int) -> None:
        wid = worker.worker_id
        count = self._restart_counts.get(wid, 0) + 1
        self._restart_counts[wid] = count
        # Checkpoint the push-side error feedback *at crash time* — the
        # state a recovery protocol would have persisted — then wipe the
        # live contexts: an in-memory crash loses them either way.
        self._checkpoints[wid] = worker.snapshot_state()
        worker.restore_state(self._pristine[wid])
        self.fault_log.append({"event": "crash", "step": step, "worker": wid})
        if crash.depart or count > self._fault.max_restarts:
            self._departed.add(wid)
            self.fault_log.append(
                {"event": "departure", "step": step, "worker": wid}
            )
        else:
            self._down_until[wid] = step + crash.down_steps

    def _recover_worker(self, worker: Worker, step: int) -> bool:
        """Rejoin one restarted worker; True when it resynced the model."""
        wid = worker.worker_id
        if self._fault.checkpoint_state:
            worker.restore_state(self._checkpoints.pop(wid))
            worker.model.load_state_dict(self.service.state_dict())
            recovery = "checkpoint"
        else:
            # Naive baseline: no recovery protocol at all. The worker
            # keeps zeroed residuals and a replica frozen at crash time —
            # every pull it missed is permanently lost.
            self._checkpoints.pop(wid, None)
            recovery = "none"
        self.fault_log.append(
            {"event": "restart", "step": step, "worker": wid, "recovery": recovery}
        )
        return recovery == "checkpoint"

    def _apply_rack_faults(self, step: int) -> tuple[frozenset, list[int]]:
        """Process uplink-flap events due at ``step``.

        Returns ``(down_racks, rejoined)``: racks cut off from the cross
        tier this step, and racks whose uplink just came back (their
        members resync after the exchange).
        """
        rejoined: list[int] = []
        fault = self._fault
        if fault is None:
            return frozenset(), rejoined
        for rack in range(self.engine_config.racks):
            flap = fault.flap_at(rack, step)
            if flap is not None:
                self._rack_down_until[rack] = step + flap.down_steps
                self._rack_rejoin_delay[rack] = flap.rejoin_delay_seconds
                self._rack_backlog.setdefault(
                    rack,
                    {
                        name: np.zeros(param.shape, dtype=np.float32)
                        for name, param in self.service.params.items()
                    },
                )
                self.fault_log.append(
                    {"event": "flap", "step": step, "rack": rack}
                )
            elif (
                rack in self._rack_down_until
                and step >= self._rack_down_until[rack]
            ):
                del self._rack_down_until[rack]
                rejoined.append(rack)
        return frozenset(self._rack_down_until), rejoined

    def _cross_route(self, name: str, rack: int) -> str:
        """Cross-tier route for ``name``'s aggregate from ``rack``.

        A single upper server sits behind one per-rack uplink
        (``cross:rack<r>``), so the route depends on which rack the
        transfer serves; a sharded upper's NICs (``cross:shard<k>``)
        are owned by the destination shard and shared by every rack.
        """
        route = self._routes[name]
        return f"cross:rack{rack}" if route == "cross" else route

    def _resync_route_elements(self, rack: int = 0) -> dict[str, int]:
        """Per-route element counts of one full-model resync transfer.

        ``rack`` qualifies hier single-upper routes to that rack's own
        uplink; flat topologies' routes pass through unchanged.
        """
        route_elems: dict[str, int] = {}
        for name, param in self.service.params.items():
            route = self._cross_route(name, rack)
            route_elems[route] = route_elems.get(route, 0) + param.size
        return route_elems

    def fault_summary(self) -> dict | None:
        """Aggregate churn telemetry for results archives (None = no faults)."""
        if self._fault is None:
            return None
        counts = {"crash": 0, "restart": 0, "departure": 0, "flap": 0, "rejoin": 0}
        for event in self.fault_log:
            counts[event["event"]] += 1
        return {
            "crashes": counts["crash"],
            "restarts": counts["restart"],
            "departures": counts["departure"],
            "flaps": counts["flap"],
            "rejoins": counts["rejoin"],
            "resync_bytes": self._fault_counters["resync_bytes"],
            "degraded_steps": self._fault_counters["degraded_steps"],
            "checkpoint_state": self._fault.checkpoint_state,
        }

    # -- telemetry ----------------------------------------------------------

    def _tel_metrics(
        self,
        record: StepTraffic,
        *,
        codec_phases: dict[str, float],
        staleness: int | None = None,
        loss: float | None = None,
        lr: float | None = None,
    ) -> None:
        """Fold one step/update's traffic record into the registry."""
        reg = self.telemetry.registry
        scheme = getattr(self.scheme, "name", type(self.scheme).__name__)
        reg.counter("wire_bytes", phase="push", scheme=scheme).inc(
            record.push_bytes
        )
        reg.counter("wire_bytes", phase="pull", scheme=scheme).inc(
            record.pull_bytes_shared
        )
        if record.intra_rack_bytes or record.cross_rack_bytes:
            reg.counter("wire_bytes", link="intra", scheme=scheme).inc(
                record.intra_rack_bytes
            )
            reg.counter("wire_bytes", link="cross", scheme=scheme).inc(
                record.cross_rack_bytes
            )
        reg.counter("messages", phase="push").inc(record.push_messages)
        reg.counter("messages", phase="pull").inc(record.pull_messages)
        reg.counter("compute_seconds").inc(record.compute_seconds)
        for phase, seconds in codec_phases.items():
            if seconds:
                reg.counter("codec_seconds", phase=phase).inc(seconds)
        if staleness is not None:
            reg.histogram("staleness").observe(staleness)
        if loss is not None:
            reg.gauge("train_loss").set(loss)
        if lr is not None:
            reg.gauge("learning_rate").set(lr)

    def _tel_bsp_step(
        self,
        step: int,
        arrivals: dict[int, float],
        compress_by_worker: dict[int, float],
        stages: list[tuple[str, str, float]],
        pull_decompress_seconds: float,
        record: StepTraffic,
        loss: float,
        lr: float,
    ) -> None:
        """Lay one synchronous step on the telemetry virtual clock.

        Per-worker tracks carry compute / compress / barrier-wait spans
        (straggler-scaled arrival times, measured codec costs); the
        serial middle of the step — server or collective codec work —
        arrives as ordered ``(track, name, seconds)`` stages, and the
        parallel pull decode closes the step on every worker track.
        """
        tel = self.telemetry
        tracer = tel.tracer
        t0 = self._tel_clock
        barrier = t0 + record.compute_seconds
        codec_end: dict[int, float] = {}
        top = barrier
        for wid in sorted(arrivals):
            c0 = t0 + arrivals[wid]
            tracer.span("engine", f"worker{wid}", "compute", t0, c0, step=step)
            c1 = c0 + compress_by_worker.get(wid, 0.0)
            if c1 > c0:
                tracer.span(
                    "engine", f"worker{wid}", "compress", c0, c1, step=step
                )
            codec_end[wid] = c1
            top = max(top, c1)
        for wid, c1 in codec_end.items():
            if top > c1:
                tracer.span(
                    "engine", f"worker{wid}", "push+wait", c1, top, step=step
                )
        cursor = top
        for track, name, seconds in stages:
            if seconds > 0:
                tracer.span(
                    "engine", track, name, cursor, cursor + seconds, step=step
                )
            cursor += seconds
        if pull_decompress_seconds > 0:
            for wid in sorted(arrivals):
                tracer.span(
                    "engine",
                    f"worker{wid}",
                    "pull-decompress",
                    cursor,
                    cursor + pull_decompress_seconds,
                    step=step,
                )
        cursor += pull_decompress_seconds
        self._tel_clock = cursor
        codec_phases = {
            "compress": max(compress_by_worker.values(), default=0.0),
            "pull-decompress": pull_decompress_seconds,
        }
        for _, name, seconds in stages:
            codec_phases[name] = codec_phases.get(name, 0.0) + seconds
        self._tel_metrics(record, codec_phases=codec_phases, loss=loss, lr=lr)
        tel.snapshot_step(step=step, clock_seconds=cursor)

    def _tel_async_update(
        self,
        *,
        unit: int,
        update: int,
        step: int,
        t0: float,
        compute: float,
        phases: list[tuple[str | None, str, float]],
        staleness: int,
        record: StepTraffic,
        loss: float,
        lr: float,
        track_prefix: str = "worker",
    ) -> None:
        """One async/SSP update on the emitting unit's virtual clock.

        ``phases`` are ordered ``(track, name, seconds)`` laid after the
        compute span; a ``None`` track means the unit's own track.
        """
        tel = self.telemetry
        tracer = tel.tracer
        unit_track = f"{track_prefix}{unit}"
        tracer.span(
            "engine", unit_track, "compute", t0, t0 + compute,
            update=update, staleness=staleness,
        )
        cursor = t0 + compute
        codec_phases: dict[str, float] = {}
        for track, name, seconds in phases:
            if seconds > 0:
                tracer.span(
                    "engine",
                    track if track is not None else unit_track,
                    name,
                    cursor,
                    cursor + seconds,
                    update=update,
                )
            cursor += seconds
            codec_phases[name] = codec_phases.get(name, 0.0) + seconds
        self._tel_metrics(
            record,
            codec_phases=codec_phases,
            staleness=staleness,
            loss=loss,
            lr=lr,
        )
        tel.snapshot_step(update=update, step=step, clock_seconds=cursor)

    def _ps_step(self) -> StepLog:
        """One BSP step against a parameter service (single or sharded)."""
        step = self.service.global_step
        config = self.engine_config

        # Fault processing first: crashes due this step take their worker
        # out *before* compute; rejoins resync from the pre-step global
        # model and compute normally. Down/departed workers carry a None
        # batch through the whole step.
        resynced = self._apply_worker_faults(step)
        batches = [
            worker.train_step()
            if worker.worker_id not in self._down_until
            and worker.worker_id not in self._departed
            else None
            for worker in self.workers
        ]
        if all(b is None for b in batches):
            raise RuntimeError(f"step {step}: no live workers remain")

        # Barrier: decide whose pushes enter aggregation. Straggler-scaled
        # compute time determines arrival order; dropped pushes were still
        # transmitted (they consumed bandwidth) but are discarded.
        decision = self._barrier_decide(self._arrivals(batches))
        accepted_pushes = [batches[i].messages for i in decision.accepted]
        if self.fusion_plan is not None:
            pull_batch = self.service.step(
                accepted_pushes,
                divisor=len(decision.accepted),
                fused_pushes=[batches[i].fused for i in decision.accepted],
            )
        else:
            pull_batch = self.service.step(
                accepted_pushes, divisor=len(decision.accepted)
            )

        # Workers pull the *shared* compressed deltas and apply them.
        t0 = time.perf_counter()
        deltas: dict[str, np.ndarray] = {}
        for name, result in pull_batch.messages.items():
            if result is None:
                continue
            deltas[name] = self.service.decompress_pull(name, result.message)
        for index, result in pull_batch.fused.items():
            if result is None:
                continue
            deltas.update(self.service.decompress_fused_pull(index, result.message))
        pull_decompress_seconds = time.perf_counter() - t0
        for worker, batch in zip(self.workers, batches):
            if batch is not None:
                worker.apply_pull(deltas)

        # -- traffic + timing accounting -------------------------------------
        n_active = sum(1 for b in batches if b is not None)
        record = StepTraffic(
            step=step,
            pull_fanout=n_active,
            num_workers=n_active,
            model_elements=self._model_elements(),
        )
        if resynced:
            # Checkpointed rejoin: each restarted worker pulls the full
            # float32 model once before computing.
            record.resync_bytes = 4 * record.model_elements * len(resynced)
            self._fault_counters["resync_bytes"] += record.resync_bytes
        bypassed = self.service.bypassed
        for batch in batches:
            if batch is None:
                continue
            for name, result in batch.messages.items():
                if result is None:
                    continue
                record.push_bytes += result.message.wire_size
                record.push_elements += result.message.element_count
                record.push_messages += 1
                if name not in bypassed:
                    record.push_bytes_main += result.message.wire_size
                    record.push_elements_main += result.message.element_count
            for result in batch.fused.values():
                if result is None:
                    continue
                record.push_bytes += result.message.wire_size
                record.push_elements += result.message.element_count
                record.push_messages += 1
        for name, result in pull_batch.messages.items():
            if result is None:
                continue
            record.pull_bytes_shared += result.message.wire_size
            record.pull_elements += result.message.element_count
            record.pull_messages += 1
            if name not in bypassed:
                record.pull_bytes_main += result.message.wire_size
                record.pull_elements_main += result.message.element_count
        for result in pull_batch.fused.values():
            if result is None:
                continue
            record.pull_bytes_shared += result.message.wire_size
            record.pull_elements += result.message.element_count
            record.pull_messages += 1
        # Workers run in parallel: the barrier charges the slowest worker it
        # actually waited for (straggler-scaled; backup workers excluded).
        record.compute_seconds = decision.compute_seconds
        record.dropped_pushes = len(decision.dropped)
        # Codec work on the critical path: slowest worker's push compression,
        # the server's serialized decompress + compress, and one worker's
        # pull decompression (workers decompress in parallel).
        record.codec_seconds = (
            max(b.compress_seconds for b in batches if b is not None)
            + pull_batch.decompress_seconds
            + pull_batch.compress_seconds
            + pull_decompress_seconds
        )
        self.traffic.record(record)
        if self.engine_config.record_transmissions:
            self.transmissions.append(
                self._ps_transmissions(
                    step,
                    batches,
                    pull_batch,
                    record,
                    pull_decompress_seconds,
                    resynced=resynced,
                )
            )
        self.update_count += 1

        loss = float(np.mean([b.loss for b in batches if b is not None]))
        lr = self.service.schedule(step)
        if self.telemetry.enabled:
            self._tel_bsp_step(
                step,
                self._arrivals(batches),
                {
                    worker.worker_id: batch.compress_seconds
                    for worker, batch in zip(self.workers, batches)
                    if batch is not None
                },
                [
                    ("server", "decompress", pull_batch.decompress_seconds),
                    ("server", "apply+compress", pull_batch.compress_seconds),
                ],
                pull_decompress_seconds,
                record,
                loss,
                lr,
            )
        return StepLog(step=step, train_loss=loss, learning_rate=lr)

    def _ps_transmissions(
        self,
        step: int,
        batches,
        pull_batch,
        record: StepTraffic,
        pull_decompress_seconds: float,
        resynced: tuple[int, ...] | list[int] = (),
    ) -> StepTransmissions:
        """Flatten one parameter-service step into simulator events.

        Mirrors the traffic-meter accounting exactly (dropped pushes were
        still transmitted; deferred messages produce no record; a down
        worker's ``None`` batch produces nothing), so the simulated
        serialized schedule reproduces the analytic model's byte and
        frame totals. Rejoin resyncs ride the step's pull phase as raw
        float32 records, one per service route per restarted worker.
        """
        sends: list[TransmissionRecord] = []
        fusion_plan = self.fusion_plan
        for position, batch in enumerate(batches):
            if batch is None:
                continue
            worker_id = self.workers[position].worker_id
            for name, result in batch.messages.items():
                if result is None:
                    continue
                sends.append(
                    TransmissionRecord(
                        name=name,
                        params=(name,),
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._routes[name],
                        worker=worker_id,
                        phase="push",
                    )
                )
            for index, result in batch.fused.items():
                if result is None:
                    continue
                bucket = fusion_plan.bucket(index)
                sends.append(
                    TransmissionRecord(
                        name=f"bucket:{index}",
                        params=bucket.names,
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._routes[bucket.names[0]],
                        worker=worker_id,
                        phase="push",
                    )
                )
        # A shared pull is compressed once but physically transmitted to
        # every worker: one frame (and one payload copy) per subscriber.
        fanout = record.pull_fanout
        for name, result in pull_batch.messages.items():
            if result is None:
                continue
            sends.append(
                TransmissionRecord(
                    name=name,
                    params=(name,),
                    wire_bytes=result.message.wire_size,
                    elements=result.message.element_count,
                    route=self._routes[name],
                    copies=fanout,
                    phase="pull",
                    frames=fanout,
                )
            )
        for index, result in pull_batch.fused.items():
            if result is None:
                continue
            bucket = fusion_plan.bucket(index)
            sends.append(
                TransmissionRecord(
                    name=f"bucket:{index}",
                    params=bucket.names,
                    wire_bytes=result.message.wire_size,
                    elements=result.message.element_count,
                    route=self._routes[bucket.names[0]],
                    copies=fanout,
                    phase="pull",
                    frames=fanout,
                )
            )
        for wid in resynced:
            for route, elements in sorted(self._resync_route_elements().items()):
                sends.append(
                    TransmissionRecord(
                        name=f"resync:w{wid}:{route}",
                        params=(),
                        wire_bytes=4 * elements,
                        elements=elements,
                        route=route,
                        worker=wid,
                        phase="pull",
                    )
                )
        return StepTransmissions(
            step=step,
            compute_seconds=record.compute_seconds,
            push_compress_seconds=max(
                b.compress_seconds for b in batches if b is not None
            ),
            server_decompress_seconds=pull_batch.decompress_seconds,
            server_compress_seconds=pull_batch.compress_seconds,
            pull_decompress_seconds=pull_decompress_seconds,
            records=tuple(sends),
        )

    def _ring_step(self) -> StepLog:
        """One BSP step over the ring: raw gradients, per-hop compression."""
        step = self.service.global_step
        config = self.engine_config

        batches = [worker.train_step_raw() for worker in self.workers]
        decision = self.barrier.decide(self._arrivals(batches))
        outcome = self.service.exchange([b.grads for b in batches])
        for worker in self.workers:
            worker.apply_pull(outcome.deltas)

        record = StepTraffic(
            step=step,
            pull_fanout=0,  # no pull phase: the all-gather already fanned out
            num_workers=config.num_workers,
            model_elements=self._model_elements(),
        )
        record.push_bytes = outcome.wire_bytes
        record.push_elements = outcome.elements
        # Every (node, hop) chunk transmission is one framed message.
        n = config.num_workers
        record.push_messages = len(self.service.params) * 2 * (n - 1) * n
        record.compute_seconds = decision.compute_seconds
        record.codec_seconds = outcome.codec_seconds
        self.traffic.record(record)
        if config.record_transmissions:
            # One collective record per tensor, accounted *per link*: bytes
            # are what one hop link carries and frames are one chunk
            # message per hop (all N links run their 2(N-1) hops in
            # parallel; the meter's aggregate count stays all-links). The
            # per-hop codec time rides in the push-compression pipeline.
            frames_per_tensor = 2 * (n - 1)
            self.transmissions.append(
                StepTransmissions(
                    step=step,
                    compute_seconds=decision.compute_seconds,
                    push_compress_seconds=outcome.codec_seconds,
                    records=tuple(
                        TransmissionRecord(
                            name=name,
                            params=(name,),
                            wire_bytes=outcome.per_tensor_link_bytes.get(name, 0),
                            elements=outcome.per_tensor_elements.get(name, 0),
                            route=self._routes[name],
                            phase="collective",
                            frames=frames_per_tensor,
                        )
                        for name in self.service.params
                    ),
                )
            )
        self.update_count += 1

        loss = float(np.mean([b.loss for b in batches]))
        lr = self.service.schedule(step)
        if self.telemetry.enabled:
            self._tel_bsp_step(
                step,
                self._arrivals(batches),
                {},
                [("ring", "allreduce+codec", outcome.codec_seconds)],
                0.0,
                record,
                loss,
                lr,
            )
        return StepLog(step=step, train_loss=loss, learning_rate=lr)

    def _hier_step(self) -> StepLog:
        """One BSP step over the two-tier exchange: rack rings, then the
        cross-rack service, then the shared deltas fan back down."""
        step = self.service.global_step
        config = self.engine_config

        down_racks, rejoined = self._apply_rack_faults(step)
        rejoin_delays = {
            r: self._rack_rejoin_delay.pop(r, 0.0) for r in rejoined
        }

        batches = [worker.train_step_raw() for worker in self.workers]
        decision = self._barrier_decide(self._arrivals(batches))
        if self._fault is not None:
            outcome = self.service.exchange(
                [b.grads for b in batches],
                down_racks=down_racks,
                catch_up=(
                    {r: self._rack_backlog[r] for r in rejoined}
                    if rejoined
                    else None
                ),
            )
        else:
            outcome = self.service.exchange([b.grads for b in batches])
        lr = self.service.schedule(step)
        for rack in range(config.racks):
            members = self._rack_workers(rack)
            if rack in down_racks:
                # Degraded local-only step: the rack ring-reduced its
                # members' gradients but the aggregate cannot reach the
                # core. Members apply a plain SGD step on the rack average
                # (no momentum or weight decay — the core owns the
                # optimizer state) and the gradient is banked for the
                # rejoin catch-up push.
                grads = outcome.down_rack_grads[rack]
                backlog = self._rack_backlog[rack]
                local_delta = {name: -lr * grad for name, grad in grads.items()}
                for name, grad in grads.items():
                    backlog[name] += grad
                for worker in members:
                    worker.apply_pull(local_delta)
            else:
                for worker in members:
                    worker.apply_pull(outcome.deltas)
        if down_racks:
            self._fault_counters["degraded_steps"] += 1
        if rejoined:
            # The rejoining rack's banked catch-up went up this step; its
            # members now resync their replicas from the post-step global
            # model, replacing the outage-window local drift.
            global_state = self.service.state_dict()
            for rack in rejoined:
                for worker in self._rack_workers(rack):
                    worker.model.load_state_dict(global_state)
                self._rack_backlog.pop(rack, None)
                self.fault_log.append(
                    {"event": "rejoin", "step": step, "rack": rack}
                )

        racks, rack_size = config.racks, config.rack_size
        n_up = racks - len(down_racks)
        has_cross = racks > 1
        record = StepTraffic(
            step=step,
            # Every member of an up rack receives one physical copy of
            # each shared cross-rack pull: one copy per up rack crosses
            # the uplink, then rack_size - 1 more circulate the rack ring.
            pull_fanout=n_up * rack_size if has_cross else 0,
            num_workers=config.num_workers,
            model_elements=self._model_elements(),
        )
        record.push_bytes = outcome.intra_wire_bytes + outcome.cross_push_bytes
        record.push_elements = outcome.intra_elements + outcome.cross_push_elements
        record.push_messages = outcome.ring_frames + outcome.cross_push_count
        record.pull_bytes_shared = outcome.cross_pull_bytes
        record.pull_elements = outcome.cross_pull_elements
        record.pull_messages = outcome.pull_message_count
        record.intra_rack_bytes = (
            outcome.intra_wire_bytes
            + outcome.cross_pull_bytes * n_up * (rack_size - 1)
        )
        record.cross_rack_bytes = (
            outcome.cross_push_bytes + outcome.cross_pull_bytes * n_up
        )
        if rejoined:
            # Rejoin resync: one full float32 model per rejoined rack —
            # one copy over the uplink, rack_size - 1 over the rack ring.
            model_bytes = 4 * record.model_elements
            record.resync_bytes = model_bytes * rack_size * len(rejoined)
            record.cross_rack_bytes += model_bytes * len(rejoined)
            record.intra_rack_bytes += (
                model_bytes * (rack_size - 1) * len(rejoined)
            )
            self._fault_counters["resync_bytes"] += record.resync_bytes
        record.compute_seconds = decision.compute_seconds
        # Critical path: the slowest rack's serial (ring + uplink codec)
        # pipeline, the upper service's serialized decompress + compress,
        # and one shared decode of the pulled deltas.
        record.codec_seconds = (
            outcome.push_compress_seconds
            + outcome.server_decompress_seconds
            + outcome.server_compress_seconds
            + outcome.pull_decompress_seconds
        )
        self.traffic.record(record)
        if config.record_transmissions:
            up_racks = tuple(r for r in range(racks) if r not in down_racks)
            link_down: tuple[tuple[str, float], ...] = ()
            extra: list[TransmissionRecord] = []
            if rejoined:
                # The rejoining rack's uplink is back but still
                # re-converging: floor only that rack's cross routes, each
                # with its own rejoin delay. (Sharded uppers share their
                # NICs across racks, so those floors still bleed over.)
                floors: dict[str, float] = {}
                for rack, delay in rejoin_delays.items():
                    if delay <= 0.0:
                        continue
                    for base in set(self._routes.values()):
                        route = (
                            f"cross:rack{rack}" if base == "cross" else base
                        )
                        floors[route] = max(floors.get(route, 0.0), delay)
                link_down = tuple(sorted(floors.items()))
                for rack in rejoined:
                    route_elems = self._resync_route_elements(rack)
                    for route, elements in sorted(route_elems.items()):
                        extra.append(
                            TransmissionRecord(
                                name=f"resync:rack{rack}:{route}",
                                params=(),
                                wire_bytes=4 * elements,
                                elements=elements,
                                route=route,
                                phase="pull",
                            )
                        )
                    extra.append(
                        TransmissionRecord(
                            name=f"resync:rack{rack}:bcast",
                            params=(),
                            wire_bytes=4 * record.model_elements,
                            elements=record.model_elements,
                            route=f"rack{rack}",
                            phase="pull",
                            frames=rack_size - 1,
                            depends_on=tuple(
                                f"resync:rack{rack}:{route}"
                                for route in sorted(route_elems)
                            ),
                        )
                    )
            self.transmissions.append(
                StepTransmissions(
                    step=step,
                    compute_seconds=decision.compute_seconds,
                    push_compress_seconds=outcome.push_compress_seconds,
                    server_decompress_seconds=outcome.server_decompress_seconds,
                    server_compress_seconds=outcome.server_compress_seconds,
                    pull_decompress_seconds=outcome.pull_decompress_seconds,
                    records=tuple(
                        self._hier_push_records(outcome)
                        + self._hier_pull_records(outcome, up_racks=up_racks)
                        + extra
                    ),
                    link_down=link_down,
                )
            )
        self.update_count += 1

        loss = float(np.mean([b.loss for b in batches]))
        if self.telemetry.enabled:
            self._tel_bsp_step(
                step,
                self._arrivals(batches),
                {},
                [
                    ("racks", "rack-pipeline", outcome.push_compress_seconds),
                    (
                        "server",
                        "decompress",
                        outcome.server_decompress_seconds,
                    ),
                    (
                        "server",
                        "apply+compress",
                        outcome.server_compress_seconds,
                    ),
                ],
                outcome.pull_decompress_seconds,
                record,
                loss,
                lr,
            )
        return StepLog(step=step, train_loss=loss, learning_rate=lr)

    def _hier_push_records(
        self, outcome
    ) -> list[TransmissionRecord]:
        """Tier-coupled upward records: per-rack collectives on the fast
        rack channels, then per-rack compressed aggregates on the cross
        uplinks, each depending on its rack's collective."""
        rack_size = self.engine_config.rack_size
        frames_per_tensor = 2 * (rack_size - 1)
        records: list[TransmissionRecord] = []
        for position, rack in enumerate(outcome.rack_indices):
            leader = rack * rack_size
            link_bytes = outcome.per_rack_link_bytes[position]
            for name in self.service.params:
                records.append(
                    TransmissionRecord(
                        name=f"{name}@rack{rack}",
                        params=(name,),
                        wire_bytes=link_bytes.get(name, 0),
                        elements=outcome.per_tensor_elements.get(name, 0),
                        route=f"rack{rack}",
                        worker=leader,
                        phase="collective",
                        frames=frames_per_tensor,
                    )
                )
        for position, rack in enumerate(outcome.rack_indices):
            if position >= len(outcome.cross_push_results):
                break
            leader = rack * rack_size
            for name, result in outcome.cross_push_results[position].items():
                if result is None:
                    continue
                records.append(
                    TransmissionRecord(
                        name=f"{name}@up{rack}",
                        params=(name,),
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._cross_route(name, rack),
                        worker=leader,
                        phase="push",
                        depends_on=(f"{name}@rack{rack}",),
                    )
                )
            if position >= len(outcome.cross_fused_results):
                continue
            for index, result in outcome.cross_fused_results[position].items():
                if result is None:
                    continue
                bucket = self.fusion_plan.bucket(index)
                # A fused uplink frame carries the whole bucket, so it may
                # leave only once every member's rack collective landed.
                records.append(
                    TransmissionRecord(
                        name=f"bucket:{index}@up{rack}",
                        params=bucket.names,
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._cross_route(bucket.names[0], rack),
                        worker=leader,
                        phase="push",
                        depends_on=tuple(
                            f"{name}@rack{rack}" for name in bucket.names
                        ),
                    )
                )
        return records

    def _hier_pull_records(
        self, outcome, up_racks: tuple[int, ...] | None = None
    ) -> list[TransmissionRecord]:
        """Downward records for a BSP step: one shared pull copy per rack
        over the cross tier, then an intra-rack pipeline broadcast per
        rack depending on it. ``up_racks`` (fault injection) restricts the
        fan-out to racks whose uplink is alive this step."""
        racks = self.engine_config.racks
        rack_size = self.engine_config.rack_size
        if up_racks is None:
            up_racks = tuple(range(racks))
        fanout = len(up_racks)
        records: list[TransmissionRecord] = []

        def shared_pull(name: str, params: tuple[str, ...], message) -> None:
            per_rack = self._routes[params[0]] == "cross"
            if per_rack:
                # Single upper server behind per-rack uplinks: each up
                # rack pulls its own copy down its own uplink (the
                # copies ride independent links, not one shared core).
                for rack in up_racks:
                    records.append(
                        TransmissionRecord(
                            name=f"{name}@down{rack}",
                            params=params,
                            wire_bytes=message.wire_size,
                            elements=message.element_count,
                            route=f"cross:rack{rack}",
                            phase="pull",
                        )
                    )
            else:
                records.append(
                    TransmissionRecord(
                        name=name,
                        params=params,
                        wire_bytes=message.wire_size,
                        elements=message.element_count,
                        route=self._routes[params[0]],
                        copies=fanout,
                        phase="pull",
                        frames=fanout,
                    )
                )
            for rack in up_racks:
                records.append(
                    TransmissionRecord(
                        name=f"{name}@bcast{rack}",
                        params=params,
                        wire_bytes=message.wire_size,
                        elements=message.element_count,
                        route=f"rack{rack}",
                        phase="pull",
                        frames=rack_size - 1,
                        depends_on=(
                            (f"{name}@down{rack}",) if per_rack else (name,)
                        ),
                    )
                )

        for name, result in outcome.pull_messages.items():
            if result is None:
                continue
            shared_pull(name, (name,), result.message)
        for index, result in outcome.pull_fused.items():
            if result is None:
                continue
            bucket = self.fusion_plan.bucket(index)
            shared_pull(f"bucket:{index}", bucket.names, result.message)
        return records

    # -- event-driven scheduling (async / SSP) -----------------------------

    def _next_worker(self) -> int:
        eligible = self.sync.eligible(self._local_steps)
        return min(eligible, key=lambda wid: (self._clock[wid], wid))

    def run_updates(self, count: int) -> None:
        """Apply ``count`` asynchronous gradient updates to the global model."""
        for _ in range(count):
            self.train_step()

    def _async_update(self) -> StepLog:
        wid = self._next_worker()
        worker = self.workers[wid]
        batch = worker.train_step()

        config = self.engine_config
        local_step = self._local_steps[wid]
        multiplier = (
            config.straggler.multiplier(wid, local_step) if config.straggler else 1.0
        )
        compute_seconds = self._compute_base(batch) * multiplier
        tel_t0 = self._clock[wid]
        self._clock[wid] += compute_seconds
        self._local_steps[wid] += 1

        # The service applies this worker's (stale) gradient immediately.
        step = self.service.global_step
        staleness = step - self._pull_step[wid]
        if self.fusion_plan is not None:
            pull_batch = self.service.step(
                [batch.messages], divisor=1, fused_pushes=[batch.fused]
            )
        else:
            pull_batch = self.service.step([batch.messages], divisor=1)
        self.update_count += 1

        # Individual pull: compress (global - worker_view) deltas for this
        # worker only, via its personal error-feedback contexts.
        record = StepTraffic(
            step=self.update_count - 1,
            pull_fanout=1,
            num_workers=1,
            model_elements=self._model_elements(),
        )
        pushes: list[TransmissionRecord] = []
        recording = config.record_transmissions
        for name, result in batch.messages.items():
            if result is None:
                continue
            record.push_bytes += result.message.wire_size
            record.push_elements += result.message.element_count
            record.push_messages += 1
            if recording:
                pushes.append(
                    TransmissionRecord(
                        name=name,
                        params=(name,),
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._routes[name],
                        worker=wid,
                        phase="push",
                    )
                )
        for index, result in batch.fused.items():
            if result is None:
                continue
            record.push_bytes += result.message.wire_size
            record.push_elements += result.message.element_count
            record.push_messages += 1
            if recording:
                bucket = self.fusion_plan.bucket(index)
                pushes.append(
                    TransmissionRecord(
                        name=f"bucket:{index}",
                        params=bucket.names,
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._routes[bucket.names[0]],
                        worker=wid,
                        phase="push",
                    )
                )
        deltas: dict[str, np.ndarray] = {}
        pulls: list[TransmissionRecord] = []
        last = self._last_global[wid]
        t0 = time.perf_counter()
        for name, context in self._pull_contexts[wid].items():
            param = self.service.params[name]
            increment = param.data - last[name]
            last[name] = param.data.copy()
            result = context.compress(increment)
            if result is None:  # deferred (local-steps); buffered in context
                continue
            deltas[name] = result.reconstruction
            record.pull_bytes_shared += result.message.wire_size
            record.pull_elements += result.message.element_count
            record.pull_messages += 1
            if recording:
                pulls.append(
                    TransmissionRecord(
                        name=name,
                        params=(name,),
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._routes[name],
                        worker=wid,
                        phase="pull",
                    )
                )
        # This worker's fused pull stream: one frame per bucket carrying
        # the member increments since its last pull. Increments are built
        # in bucket order (the `last` snapshots mutate as we go), then all
        # buckets compress through one vectorized codec pass.
        fused_pull_items = []
        for index, context in self._fused_pull_contexts[wid].items():
            increments = {}
            for name in context.bucket.names:
                param = self.service.params[name]
                increments[name] = param.data - last[name]
                last[name] = param.data.copy()
            fused_pull_items.append((index, context, increments))
        fused_pull_results = compress_fused_batch(
            (context, increments) for _, context, increments in fused_pull_items
        )
        for (index, context, _), result in zip(fused_pull_items, fused_pull_results):
            bucket = context.bucket
            if result is None:  # deferred: whole bucket rides the buffer
                continue
            deltas.update(result.parts)
            record.pull_bytes_shared += result.message.wire_size
            record.pull_elements += result.message.element_count
            record.pull_messages += 1
            if recording:
                pulls.append(
                    TransmissionRecord(
                        name=f"bucket:{index}",
                        params=bucket.names,
                        wire_bytes=result.message.wire_size,
                        elements=result.message.element_count,
                        route=self._routes[bucket.names[0]],
                        worker=wid,
                        phase="pull",
                    )
                )
        pull_compress_seconds = time.perf_counter() - t0
        self._pull_step[wid] = self.service.global_step
        worker.apply_pull(deltas)
        # Honest per-update accounting: this scheduling quantum computed on
        # one worker and serialized one apply on the server (the discarded
        # shared-pull compression stays uncharged).
        record.compute_seconds = compute_seconds
        record.codec_seconds = (
            batch.compress_seconds
            + pull_batch.decompress_seconds
            + pull_compress_seconds
        )
        self.traffic.record(record)
        if recording:
            self.update_events.append(
                UpdateTransmissions(
                    update=self.update_count - 1,
                    worker=wid,
                    local_step=local_step,
                    global_step=step,
                    staleness=staleness,
                    clock_seconds=self._clock[wid],
                    compute_seconds=compute_seconds,
                    push_compress_seconds=batch.compress_seconds,
                    server_seconds=pull_batch.decompress_seconds,
                    pull_compress_seconds=pull_compress_seconds,
                    records=tuple(pushes + pulls),
                )
            )

        lr = self.service.schedule(step)
        if self.telemetry.enabled:
            self._tel_async_update(
                unit=wid,
                update=self.update_count - 1,
                step=step,
                t0=tel_t0,
                compute=compute_seconds,
                phases=[
                    (None, "compress", batch.compress_seconds),
                    ("server", "apply", pull_batch.decompress_seconds),
                    ("server", "pull-compress", pull_compress_seconds),
                ],
                staleness=staleness,
                record=record,
                loss=batch.loss,
                lr=lr,
            )
        return StepLog(step=step, train_loss=batch.loss, learning_rate=lr)

    def _hier_async_update(self) -> StepLog:
        """One rack's asynchronous update: the rack steps synchronously
        (ring all-reduce over its members), then exchanges with the
        cross-rack service on its own clock — intra-rack BSP, inter-rack
        async/SSP, with staleness observed at rack granularity."""
        rack = self._next_worker()
        workers = self._rack_workers(rack)
        batches = [worker.train_step_raw() for worker in workers]

        config = self.engine_config
        rack_size = config.rack_size
        local_step = self._local_steps[rack]
        straggler = config.straggler
        # The rack commits when its slowest member finishes computing.
        compute_seconds = max(
            self._compute_base(batch)
            * (
                straggler.multiplier(worker.worker_id, local_step)
                if straggler
                else 1.0
            )
            for worker, batch in zip(workers, batches)
        )
        tel_t0 = self._clock[rack]
        self._clock[rack] += compute_seconds
        self._local_steps[rack] += 1

        step = self.service.global_step
        staleness = step - self._pull_step[rack]
        outcome = self.service.rack_exchange(rack, [b.grads for b in batches])
        self.update_count += 1

        record = StepTraffic(
            step=self.update_count - 1,
            # This rack's pull: one copy over the uplink plus the
            # rack-internal re-broadcast — one physical copy per member.
            pull_fanout=rack_size,
            num_workers=rack_size,
            model_elements=self._model_elements(),
        )
        record.push_bytes = outcome.intra_wire_bytes + outcome.cross_push_bytes
        record.push_elements = outcome.intra_elements + outcome.cross_push_elements
        record.push_messages = outcome.ring_frames + outcome.cross_push_count
        record.intra_rack_bytes = outcome.intra_wire_bytes
        record.cross_rack_bytes = outcome.cross_push_bytes

        recording = config.record_transmissions
        pushes: list[TransmissionRecord] = (
            self._hier_push_records(outcome) if recording else []
        )

        # Individual pull: compress (global - rack_view) deltas for this
        # rack only, via its personal error-feedback contexts; the result
        # crosses the uplink once and circulates the rack ring.
        deltas: dict[str, np.ndarray] = {}
        pulls: list[TransmissionRecord] = []
        last = self._last_global[rack]
        t0 = time.perf_counter()

        def account_pull(
            label: str, params: tuple[str, ...], message
        ) -> None:
            record.pull_bytes_shared += message.wire_size
            record.pull_elements += message.element_count
            record.pull_messages += 1
            record.cross_rack_bytes += message.wire_size
            record.intra_rack_bytes += message.wire_size * (rack_size - 1)
            if recording:
                pulls.append(
                    TransmissionRecord(
                        name=f"{label}@down{rack}",
                        params=params,
                        wire_bytes=message.wire_size,
                        elements=message.element_count,
                        route=self._cross_route(params[0], rack),
                        worker=rack,
                        phase="pull",
                    )
                )
                pulls.append(
                    TransmissionRecord(
                        name=f"{label}@bcast{rack}",
                        params=params,
                        wire_bytes=message.wire_size,
                        elements=message.element_count,
                        route=f"rack{rack}",
                        worker=rack,
                        phase="pull",
                        frames=rack_size - 1,
                        depends_on=(f"{label}@down{rack}",),
                    )
                )

        for name, context in self._pull_contexts[rack].items():
            param = self.service.params[name]
            increment = param.data - last[name]
            last[name] = param.data.copy()
            result = context.compress(increment)
            if result is None:  # deferred (local-steps); buffered in context
                continue
            deltas[name] = result.reconstruction
            account_pull(name, (name,), result.message)
        # This rack's fused pull stream: one frame per bucket crosses the
        # uplink and circulates the rack ring, like any shared delta.
        # Increments are built in bucket order (the `last` snapshots mutate
        # as we go), then all buckets share one vectorized codec pass.
        fused_pull_items = []
        for index, context in self._fused_pull_contexts[rack].items():
            increments = {}
            for name in context.bucket.names:
                param = self.service.params[name]
                increments[name] = param.data - last[name]
                last[name] = param.data.copy()
            fused_pull_items.append((index, context, increments))
        fused_pull_results = compress_fused_batch(
            (context, increments) for _, context, increments in fused_pull_items
        )
        for (index, context, _), result in zip(fused_pull_items, fused_pull_results):
            if result is None:  # deferred: whole bucket rides the buffer
                continue
            deltas.update(result.parts)
            account_pull(f"bucket:{index}", context.bucket.names, result.message)
        pull_compress_seconds = time.perf_counter() - t0
        self._pull_step[rack] = self.service.global_step
        for worker in workers:
            worker.apply_pull(deltas)

        record.compute_seconds = compute_seconds
        record.codec_seconds = (
            outcome.push_compress_seconds
            + outcome.server_decompress_seconds
            + pull_compress_seconds
        )
        self.traffic.record(record)
        if recording:
            self.update_events.append(
                UpdateTransmissions(
                    update=self.update_count - 1,
                    worker=rack,
                    local_step=local_step,
                    global_step=step,
                    staleness=staleness,
                    clock_seconds=self._clock[rack],
                    compute_seconds=compute_seconds,
                    push_compress_seconds=outcome.push_compress_seconds,
                    server_seconds=outcome.server_decompress_seconds,
                    pull_compress_seconds=pull_compress_seconds,
                    records=tuple(pushes + pulls),
                )
            )

        loss = float(np.mean([b.loss for b in batches]))
        lr = self.service.schedule(step)
        if self.telemetry.enabled:
            self._tel_async_update(
                unit=rack,
                update=self.update_count - 1,
                step=step,
                t0=tel_t0,
                compute=compute_seconds,
                phases=[
                    (None, "rack-pipeline", outcome.push_compress_seconds),
                    ("server", "apply", outcome.server_decompress_seconds),
                    ("server", "pull-compress", pull_compress_seconds),
                ],
                staleness=staleness,
                record=record,
                loss=loss,
                lr=lr,
                track_prefix="rack",
            )
        return StepLog(step=step, train_loss=loss, learning_rate=lr)

    def max_staleness_observed(self) -> int:
        """Largest local-step lead any worker currently holds (async/SSP)."""
        if self.sync.synchronous:
            return 0
        steps = self._local_steps.values()
        return max(steps) - min(steps)

    # -- evaluation ----------------------------------------------------------

    def _test_set(self, test_size: int) -> tuple[np.ndarray, np.ndarray]:
        if self._test_cache is None or self._test_cache[0].shape[0] != test_size:
            self._test_cache = self.dataset.test_set(test_size)
        return self._test_cache

    def evaluate(self, *, test_size: int = 1000) -> EvalResult:
        """Evaluate the *global* model on the held-out test set.

        Batch-norm running statistics come from worker 0's replica — the
        paper makes one worker responsible for batch-norm updates (§5.2).
        """
        self._eval_model.load_state_dict(self.service.state_dict())
        self._sync_bn_stats(self.workers[0].model, self._eval_model)
        images, labels = self._test_set(test_size)
        logits = self._eval_model.forward(images, training=False)
        loss = SoftmaxCrossEntropy().forward(logits, labels)
        return EvalResult(
            step=self.global_step,
            test_accuracy=accuracy(logits, labels),
            test_loss=loss,
        )

    @staticmethod
    def _sync_bn_stats(source: Module, target: Module) -> None:
        src_bns = [m for m in source.iter_modules() if isinstance(m, BatchNorm2d)]
        dst_bns = [m for m in target.iter_modules() if isinstance(m, BatchNorm2d)]
        if len(src_bns) != len(dst_bns):
            raise RuntimeError("model topology mismatch between replicas")
        for src, dst in zip(src_bns, dst_bns):
            dst.load_stats(src.stats_dict())

    def model_divergence(self) -> float:
        """Max L2 distance between any worker replica and the global model.

        Lossy pull compression lets replicas drift; error feedback should
        keep this bounded. Exposed for tests and diagnostics.
        """
        global_state = self.service.state_dict()
        worst = 0.0
        for worker in self.workers:
            local = worker.model.state_dict()
            dist = float(
                np.sqrt(
                    sum(
                        np.sum((local[k] - global_state[k]) ** 2)
                        for k in global_state
                    )
                )
            )
            worst = max(worst, dist)
        return worst
