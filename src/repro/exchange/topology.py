"""Exchange topologies: where gradients travel (paper §2, Figure 1).

An :class:`ExchangeTopology` builds the *parameter service* an
:class:`~repro.exchange.engine.ExchangeEngine` steps against. Three
topologies ship:

* :class:`SingleServerTopology` — the paper's evaluated setting: one
  :class:`~repro.distributed.server.ParameterServer` holds the whole model.
* :class:`ShardedTopology` — the multi-server half of Figure 1: the model
  is partitioned across ``num_shards`` independent servers
  (:class:`~repro.distributed.sharding.ShardedParameterService`), spreading
  the hot uplink.
* :class:`RingTopology` — bandwidth-optimal ring all-reduce with per-hop
  compression, the serverless alternative the paper contrasts against.
  Workers hand over *raw* gradients (``wants_raw_gradients``); compression
  happens inside the collective, so per-worker push contexts do not exist.

All services expose the :class:`~repro.distributed.server.ParameterServer`
surface the engine relies on: ``step``/``exchange``, ``state_dict``,
``params``, ``bypassed``, ``schedule``, and ``global_step``.
"""

from __future__ import annotations

import abc
import time

import numpy as np

from repro.compression.base import Compressor
from repro.compression.fusion import FusionPlan
from repro.distributed.allreduce import RingAllReduce
from repro.distributed.defaults import SMALL_TENSOR_THRESHOLD
from repro.distributed.server import ParameterServer
from repro.distributed.sharding import ShardedParameterService
from repro.nn.parameter import Parameter
from repro.nn.schedule import Schedule

__all__ = [
    "ExchangeTopology",
    "SingleServerTopology",
    "ShardedTopology",
    "RingTopology",
    "RingExchangeService",
    "RingOutcome",
    "make_topology",
    "TOPOLOGIES",
]


class ExchangeTopology(abc.ABC):
    """Factory for the parameter service behind one gradient-exchange plan."""

    name: str = "abstract"
    #: True when workers should skip push compression and hand the engine
    #: raw gradients (collectives compress per hop, not per worker).
    wants_raw_gradients: bool = False
    #: True when the topology can exchange fused small-tensor buckets.
    supports_fusion: bool = False

    @abc.abstractmethod
    def build_service(
        self,
        parameters: list[Parameter],
        optimizer_factory,
        schedule: Schedule,
        scheme: Compressor,
        *,
        num_workers: int,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
        fusion_plan: FusionPlan | None = None,
    ):
        """Construct the service the engine will step against."""

    def transmission_routes(self, service) -> dict[str, str]:
        """Map each parameter tensor to the link its messages traverse.

        This is the topology half of the exchange plan the network
        simulator (:mod:`repro.netsim`) replays: the engine stamps every
        recorded transmission with its route, and the simulator serializes
        transfers per route instead of assuming one shared server NIC.
        The default sends everything through the single ``"server"`` link.
        """
        return {name: "server" for name in service.params}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name!r})"


class SingleServerTopology(ExchangeTopology):
    """One parameter server owns the whole model (paper §5.2)."""

    name = "single"
    supports_fusion = True

    def build_service(
        self,
        parameters,
        optimizer_factory,
        schedule,
        scheme,
        *,
        num_workers,
        small_tensor_threshold=SMALL_TENSOR_THRESHOLD,
        fusion_plan=None,
    ) -> ParameterServer:
        return ParameterServer(
            parameters,
            optimizer_factory(),
            schedule,
            scheme,
            num_workers,
            small_tensor_threshold=small_tensor_threshold,
            fusion_plan=fusion_plan,
        )


class ShardedTopology(ExchangeTopology):
    """The model is partitioned across independent parameter servers."""

    def __init__(self, num_shards: int = 2):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.name = f"sharded(shards={num_shards})"

    def build_service(
        self,
        parameters,
        optimizer_factory,
        schedule,
        scheme,
        *,
        num_workers,
        small_tensor_threshold=SMALL_TENSOR_THRESHOLD,
        fusion_plan=None,
    ) -> ShardedParameterService:
        if fusion_plan is not None:
            raise ValueError(
                "fused buckets would span shard boundaries; per-shard bucket "
                "plans are future work (see ARCHITECTURE.md)"
            )
        return ShardedParameterService(
            parameters,
            optimizer_factory,
            schedule,
            scheme,
            num_workers=num_workers,
            num_shards=self.num_shards,
            small_tensor_threshold=small_tensor_threshold,
        )

    def transmission_routes(self, service) -> dict[str, str]:
        """Each tensor travels through its owning shard's independent NIC."""
        return {
            name: f"shard{service.shard_of(name)}" for name in service.params
        }


class RingOutcome:
    """Result of one ring exchange round."""

    __slots__ = (
        "deltas",
        "wire_bytes",
        "codec_seconds",
        "elements",
        "max_link_bytes",
        "per_tensor_link_bytes",
        "per_tensor_elements",
    )

    def __init__(
        self,
        deltas: dict[str, np.ndarray],
        wire_bytes: int,
        codec_seconds: float,
        elements: int,
        max_link_bytes: int,
        per_tensor_link_bytes: dict[str, int] | None = None,
        per_tensor_elements: dict[str, int] | None = None,
    ):
        self.deltas = deltas
        self.wire_bytes = wire_bytes
        self.codec_seconds = codec_seconds
        self.elements = elements
        self.max_link_bytes = max_link_bytes
        #: Per-tensor bytes the *busiest single link* carried — the honest
        #: quantity for ring step time (every link works in parallel; the
        #: server-NIC model would wrongly charge the all-links sum).
        self.per_tensor_link_bytes = per_tensor_link_bytes or {}
        #: Per-tensor transmitted element counts (2 (N-1)/N of the size).
        self.per_tensor_elements = per_tensor_elements or {}


class RingExchangeService:
    """Serverless exchange: gradients are averaged by a per-tensor ring
    all-reduce with persistent per-hop compression contexts, and the global
    update is applied once to a canonical model every replica mirrors.

    Small tensors travel as raw float32 chunks (the §5.1 bypass maps to an
    uncompressed ring); large tensors compress per hop, so error feedback
    corrects each *link* across training steps.
    """

    wants_raw_gradients = True

    def __init__(
        self,
        parameters: list[Parameter],
        optimizer,
        schedule: Schedule,
        scheme: Compressor,
        *,
        num_workers: int,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
    ):
        if num_workers < 2:
            raise ValueError(
                f"a ring needs >= 2 workers, got {num_workers}"
            )
        self.optimizer = optimizer
        self.schedule = schedule
        self.scheme = scheme
        self.num_workers = int(num_workers)
        self.small_tensor_threshold = int(small_tensor_threshold)
        self.params: dict[str, Parameter] = {
            p.name: Parameter(p.name, p.data.copy(), weight_decay=p.weight_decay)
            for p in parameters
        }
        self.bypassed: set[str] = {
            name
            for name, param in self.params.items()
            if param.size < self.small_tensor_threshold
        }
        self.rings: dict[str, RingAllReduce] = {
            name: RingAllReduce(
                self.num_workers,
                param.shape,
                compressor=None if name in self.bypassed else scheme,
            )
            for name, param in self.params.items()
        }
        self.global_step = 0

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.params.items()}

    def exchange(self, grad_dicts: list[dict[str, np.ndarray]]) -> RingOutcome:
        """Ring-reduce every tensor, update the canonical model, and return
        the model deltas each replica applies locally (no pull traffic —
        after the all-gather phase every node already holds the result)."""
        if len(grad_dicts) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} gradient sets, got {len(grad_dicts)}"
            )
        t0 = time.perf_counter()
        reduced: dict[str, np.ndarray] = {}
        wire = 0
        max_link = 0
        elements = 0
        per_tensor_link: dict[str, int] = {}
        per_tensor_elements: dict[str, int] = {}
        for name, param in self.params.items():
            result = self.rings[name].reduce(
                [grads[name] for grads in grad_dicts], average=True
            )
            reduced[name] = result.outputs[0]
            wire += result.wire_bytes
            max_link = max(max_link, result.max_link_bytes)
            per_tensor_link[name] = result.max_link_bytes
            per_tensor_elements[name] = (
                param.size * 2 * (self.num_workers - 1) // self.num_workers
            )
            elements += per_tensor_elements[name]
        codec_seconds = time.perf_counter() - t0

        lr = self.schedule(self.global_step)
        previous = {name: p.data.copy() for name, p in self.params.items()}
        updated = list(self.params.values())
        for param in updated:
            param.grad = reduced[param.name]
        self.optimizer.step(updated, lr)
        for param in updated:
            param.grad = None
        self.global_step += 1

        deltas = {
            name: param.data - previous[name] for name, param in self.params.items()
        }
        return RingOutcome(
            deltas,
            wire,
            codec_seconds,
            elements,
            max_link,
            per_tensor_link,
            per_tensor_elements,
        )


class RingTopology(ExchangeTopology):
    """Ring all-reduce: no server, per-hop compression, no pull phase."""

    name = "ring"
    wants_raw_gradients = True

    def build_service(
        self,
        parameters,
        optimizer_factory,
        schedule,
        scheme,
        *,
        num_workers,
        small_tensor_threshold=SMALL_TENSOR_THRESHOLD,
        fusion_plan=None,
    ) -> RingExchangeService:
        if fusion_plan is not None:
            raise ValueError(
                "the ring exchanges raw gradients; fused buckets only apply "
                "to point-to-point push/pull framing"
            )
        return RingExchangeService(
            parameters,
            optimizer_factory(),
            schedule,
            scheme,
            num_workers=num_workers,
            small_tensor_threshold=small_tensor_threshold,
        )

    def transmission_routes(self, service) -> dict[str, str]:
        """Every tensor circulates the ring's (lockstep) hop links."""
        return {name: "ring" for name in service.params}


#: Registry of topology names accepted by the engine and the harness.
TOPOLOGIES = ("single", "sharded", "ring")


def make_topology(name: str, *, num_shards: int = 2) -> ExchangeTopology:
    """Construct a topology from its registry name and knobs."""
    if name == "single":
        return SingleServerTopology()
    if name == "sharded":
        return ShardedTopology(num_shards)
    if name == "ring":
        return RingTopology()
    raise ValueError(f"unknown topology {name!r}; expected one of {TOPOLOGIES}")
