"""Exchange topologies: where gradients travel (paper §2, Figure 1).

An :class:`ExchangeTopology` builds the *parameter service* an
:class:`~repro.exchange.engine.ExchangeEngine` steps against. Three
topologies ship:

* :class:`SingleServerTopology` — the paper's evaluated setting: one
  :class:`~repro.distributed.server.ParameterServer` holds the whole model.
* :class:`ShardedTopology` — the multi-server half of Figure 1: the model
  is partitioned across ``num_shards`` independent servers
  (:class:`~repro.distributed.sharding.ShardedParameterService`), spreading
  the hot uplink.
* :class:`RingTopology` — bandwidth-optimal ring all-reduce with per-hop
  compression, the serverless alternative the paper contrasts against.
  Workers hand over *raw* gradients (``wants_raw_gradients``); compression
  happens inside the collective, so per-worker push contexts do not exist.
* :class:`HierarchicalTopology` — the first *composed* topology: workers
  are grouped into racks, each rack runs a ring all-reduce over its fast
  local links, and one 3LC-compressed aggregate per rack crosses the
  scarce uplink to a cross-rack parameter service (a single server or a
  sharded service, reused as the upper tier). This is the regime the
  paper targets — compression matters most where bandwidth is scarcest.

All services expose the :class:`~repro.distributed.server.ParameterServer`
surface the engine relies on: ``step``/``exchange``, ``state_dict``,
``params``, ``bypassed``, ``schedule``, and ``global_step``.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import Compressor, CompressionResult
from repro.compression.fusion import (
    FusedBucketContext,
    FusedCompressionResult,
    FusionPlan,
    compress_fused_batch,
)
from repro.distributed.allreduce import RingAllReduce
from repro.distributed.defaults import SMALL_TENSOR_THRESHOLD
from repro.distributed.server import ParameterServer
from repro.distributed.sharding import ShardedParameterService, shard_owner_map
from repro.exchange.wireplan import fusion_incompatibility
from repro.nn.parameter import Parameter
from repro.nn.schedule import Schedule

__all__ = [
    "ExchangeTopology",
    "SingleServerTopology",
    "ShardedTopology",
    "RingTopology",
    "RingExchangeService",
    "RingOutcome",
    "HierarchicalTopology",
    "HierarchicalExchangeService",
    "HierarchicalOutcome",
    "make_topology",
    "TOPOLOGIES",
]


class ExchangeTopology(abc.ABC):
    """Factory for the parameter service behind one gradient-exchange plan."""

    name: str = "abstract"
    #: True when workers should skip push compression and hand the engine
    #: raw gradients (collectives compress per hop, not per worker).
    wants_raw_gradients: bool = False
    #: True when the topology can exchange fused small-tensor buckets.
    supports_fusion: bool = False
    #: True when the topology can run under async/SSP scheduling. A flat
    #: ring cannot (the collective is globally synchronous); the
    #: hierarchical topology can — racks are synchronous internally but
    #: exchange with the cross-rack service asynchronously.
    supports_event_modes: bool = True

    @abc.abstractmethod
    def build_service(
        self,
        parameters: list[Parameter],
        optimizer_factory,
        schedule: Schedule,
        scheme: Compressor,
        *,
        num_workers: int,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
        fusion_plan: FusionPlan | None = None,
    ):
        """Construct the service the engine will step against."""

    def fusion_partition(self, sizes: dict[str, int]):
        """Tensor-name → wire-destination key for the fused-bucket plan.

        The wire-plan layer (:mod:`repro.exchange.wireplan`) calls this
        before any service exists, so the returned function must be
        derivable from the parameter sizes alone — which it is: the
        sharded partition is the deterministic greedy owner map, and the
        hierarchical cross tier reuses it for a sharded upper service.
        ``None`` means every fused frame shares one destination (the
        single server, a single cross-rack uplink service).
        """
        return None

    def transmission_routes(self, service) -> dict[str, str]:
        """Map each parameter tensor to the link its messages traverse.

        This is the topology half of the exchange plan the network
        simulator (:mod:`repro.netsim`) replays: the engine stamps every
        recorded transmission with its route, and the simulator serializes
        transfers per route instead of assuming one shared server NIC.
        The default sends everything through the single ``"server"`` link.
        """
        return {name: "server" for name in service.params}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name!r})"


class SingleServerTopology(ExchangeTopology):
    """One parameter server owns the whole model (paper §5.2)."""

    name = "single"
    supports_fusion = True

    def build_service(
        self,
        parameters,
        optimizer_factory,
        schedule,
        scheme,
        *,
        num_workers,
        small_tensor_threshold=SMALL_TENSOR_THRESHOLD,
        fusion_plan=None,
    ) -> ParameterServer:
        return ParameterServer(
            parameters,
            optimizer_factory(),
            schedule,
            scheme,
            num_workers,
            small_tensor_threshold=small_tensor_threshold,
            fusion_plan=fusion_plan,
        )


class ShardedTopology(ExchangeTopology):
    """The model is partitioned across independent parameter servers."""

    supports_fusion = True

    def __init__(self, num_shards: int = 2):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.name = f"sharded(shards={num_shards})"

    def fusion_partition(self, sizes: dict[str, int]):
        """Buckets must not span shards: partition by the greedy owner map
        — the same deterministic map the service itself derives."""
        return shard_owner_map(sizes, self.num_shards).__getitem__

    def build_service(
        self,
        parameters,
        optimizer_factory,
        schedule,
        scheme,
        *,
        num_workers,
        small_tensor_threshold=SMALL_TENSOR_THRESHOLD,
        fusion_plan=None,
    ) -> ShardedParameterService:
        return ShardedParameterService(
            parameters,
            optimizer_factory,
            schedule,
            scheme,
            num_workers=num_workers,
            num_shards=self.num_shards,
            small_tensor_threshold=small_tensor_threshold,
            fusion_plan=fusion_plan,
        )

    def transmission_routes(self, service) -> dict[str, str]:
        """Each tensor travels through its owning shard's independent NIC."""
        return {
            name: f"shard{service.shard_of(name)}" for name in service.params
        }


class RingOutcome:
    """Result of one ring exchange round."""

    __slots__ = (
        "deltas",
        "wire_bytes",
        "codec_seconds",
        "elements",
        "max_link_bytes",
        "per_tensor_link_bytes",
        "per_tensor_elements",
    )

    def __init__(
        self,
        deltas: dict[str, np.ndarray],
        wire_bytes: int,
        codec_seconds: float,
        elements: int,
        max_link_bytes: int,
        per_tensor_link_bytes: dict[str, int] | None = None,
        per_tensor_elements: dict[str, int] | None = None,
    ):
        self.deltas = deltas
        self.wire_bytes = wire_bytes
        self.codec_seconds = codec_seconds
        self.elements = elements
        self.max_link_bytes = max_link_bytes
        #: Per-tensor bytes the *busiest single link* carried — the honest
        #: quantity for ring step time (every link works in parallel; the
        #: server-NIC model would wrongly charge the all-links sum).
        self.per_tensor_link_bytes = per_tensor_link_bytes or {}
        #: Per-tensor transmitted element counts (2 (N-1)/N of the size).
        self.per_tensor_elements = per_tensor_elements or {}


class RingExchangeService:
    """Serverless exchange: gradients are averaged by a per-tensor ring
    all-reduce with persistent per-hop compression contexts, and the global
    update is applied once to a canonical model every replica mirrors.

    Small tensors travel as raw float32 chunks (the §5.1 bypass maps to an
    uncompressed ring); large tensors compress per hop, so error feedback
    corrects each *link* across training steps.
    """

    wants_raw_gradients = True

    def __init__(
        self,
        parameters: list[Parameter],
        optimizer,
        schedule: Schedule,
        scheme: Compressor,
        *,
        num_workers: int,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
    ):
        if num_workers < 2:
            raise ValueError(
                f"a ring needs >= 2 workers, got {num_workers}"
            )
        self.optimizer = optimizer
        self.schedule = schedule
        self.scheme = scheme
        self.num_workers = int(num_workers)
        self.small_tensor_threshold = int(small_tensor_threshold)
        self.params: dict[str, Parameter] = {
            p.name: Parameter(p.name, p.data.copy(), weight_decay=p.weight_decay)
            for p in parameters
        }
        self.bypassed: set[str] = {
            name
            for name, param in self.params.items()
            if param.size < self.small_tensor_threshold
        }
        self.rings: dict[str, RingAllReduce] = {
            name: RingAllReduce(
                self.num_workers,
                param.shape,
                compressor=None if name in self.bypassed else scheme,
            )
            for name, param in self.params.items()
        }
        self.global_step = 0

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.params.items()}

    def exchange(self, grad_dicts: list[dict[str, np.ndarray]]) -> RingOutcome:
        """Ring-reduce every tensor, update the canonical model, and return
        the model deltas each replica applies locally (no pull traffic —
        after the all-gather phase every node already holds the result)."""
        if len(grad_dicts) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} gradient sets, got {len(grad_dicts)}"
            )
        t0 = time.perf_counter()
        reduced: dict[str, np.ndarray] = {}
        wire = 0
        max_link = 0
        elements = 0
        per_tensor_link: dict[str, int] = {}
        per_tensor_elements: dict[str, int] = {}
        for name, param in self.params.items():
            result = self.rings[name].reduce(
                [grads[name] for grads in grad_dicts], average=True
            )
            reduced[name] = result.outputs[0]
            wire += result.wire_bytes
            max_link = max(max_link, result.max_link_bytes)
            per_tensor_link[name] = result.max_link_bytes
            per_tensor_elements[name] = (
                param.size * 2 * (self.num_workers - 1) // self.num_workers
            )
            elements += per_tensor_elements[name]
        codec_seconds = time.perf_counter() - t0

        lr = self.schedule(self.global_step)
        previous = {name: p.data.copy() for name, p in self.params.items()}
        updated = list(self.params.values())
        for param in updated:
            param.grad = reduced[param.name]
        self.optimizer.step(updated, lr)
        for param in updated:
            param.grad = None
        self.global_step += 1

        deltas = {
            name: param.data - previous[name] for name, param in self.params.items()
        }
        return RingOutcome(
            deltas,
            wire,
            codec_seconds,
            elements,
            max_link,
            per_tensor_link,
            per_tensor_elements,
        )


class RingTopology(ExchangeTopology):
    """Ring all-reduce: no server, per-hop compression, no pull phase."""

    name = "ring"
    wants_raw_gradients = True
    supports_event_modes = False

    def build_service(
        self,
        parameters,
        optimizer_factory,
        schedule,
        scheme,
        *,
        num_workers,
        small_tensor_threshold=SMALL_TENSOR_THRESHOLD,
        fusion_plan=None,
    ) -> RingExchangeService:
        if fusion_plan is not None:
            raise ValueError(fusion_incompatibility("ring"))
        return RingExchangeService(
            parameters,
            optimizer_factory(),
            schedule,
            scheme,
            num_workers=num_workers,
            small_tensor_threshold=small_tensor_threshold,
        )

    def transmission_routes(self, service) -> dict[str, str]:
        """Every tensor circulates the ring's (lockstep) hop links."""
        return {name: "ring" for name in service.params}


@dataclass
class HierarchicalOutcome:
    """Result of one hierarchical exchange (a full BSP step, or one
    rack's asynchronous update).

    Intra-rack quantities follow the ring conventions: ``intra_wire_bytes``
    is the all-links sum while ``per_rack_link_bytes`` holds each rack's
    busiest-single-link bytes per tensor (the honest per-channel volume
    the simulator schedules). Cross-rack quantities are point-to-point:
    compressed rack aggregates up, shared compressed deltas down.
    """

    #: Model deltas every worker applies (``None`` for async rack
    #: updates — the engine compresses per-rack pull increments itself).
    deltas: dict[str, np.ndarray] | None
    #: Which racks participated (all of them for a BSP step).
    rack_indices: tuple[int, ...]
    #: Per participating rack: tensor -> busiest-hop-link bytes.
    per_rack_link_bytes: tuple[dict[str, int], ...]
    #: Per-tensor transmitted elements on one rack ring (2 (W-1)/W of it).
    per_tensor_elements: dict[str, int]
    intra_wire_bytes: int
    intra_elements: int
    #: Total intra-rack wire frames (all hop links of all racks).
    ring_frames: int
    #: Per participating rack: ring-reduce codec seconds.
    rack_codec_seconds: tuple[float, ...]
    #: Per participating rack: cross-push results keyed by tensor.
    cross_push_results: tuple[dict[str, CompressionResult | None], ...]
    #: Per participating rack: uplink compression seconds.
    cross_compress_seconds: tuple[float, ...]
    cross_push_bytes: int
    cross_push_elements: int
    #: Shared cross-rack pull messages (BSP only; empty for rack updates).
    pull_messages: dict[str, CompressionResult | None] = field(
        default_factory=dict
    )
    cross_pull_bytes: int = 0
    cross_pull_elements: int = 0
    server_decompress_seconds: float = 0.0
    server_compress_seconds: float = 0.0
    pull_decompress_seconds: float = 0.0
    #: Per participating rack: fused cross-push results keyed by (global)
    #: bucket index — empty tuples/dicts when the run has no fusion plan.
    #: Fused bytes are already folded into the cross byte totals above.
    cross_fused_results: tuple[
        dict[int, FusedCompressionResult | None], ...
    ] = ()
    #: Shared fused pull messages keyed by bucket index (BSP only).
    pull_fused: dict[int, FusedCompressionResult | None] = field(
        default_factory=dict
    )
    #: Rack-averaged gradients of racks whose uplink was down this step
    #: (fault injection): reduced on the healthy rack fabric but excluded
    #: from the global exchange. The engine applies them as degraded
    #: local-only steps and banks them for the rejoin catch-up push.
    down_rack_grads: dict[int, dict[str, np.ndarray]] = field(
        default_factory=dict
    )

    @property
    def cross_push_count(self) -> int:
        """Transmitted cross-push wire frames (named + fused, non-``None``)."""
        return sum(
            1
            for messages in self.cross_push_results
            for result in messages.values()
            if result is not None
        ) + sum(
            1
            for fused in self.cross_fused_results
            for result in fused.values()
            if result is not None
        )

    @property
    def pull_message_count(self) -> int:
        """Compressed shared-pull messages (named + fused, non-``None``)."""
        return sum(
            1 for result in self.pull_messages.values() if result is not None
        ) + sum(1 for result in self.pull_fused.values() if result is not None)

    @property
    def push_compress_seconds(self) -> float:
        """Slowest rack's serial (ring codec + uplink compress) pipeline —
        the critical-path push-compression convention."""
        return max(
            codec + compress
            for codec, compress in zip(
                self.rack_codec_seconds, self.cross_compress_seconds
            )
        )


class HierarchicalExchangeService:
    """Two-tier exchange: rack-local rings feeding a cross-rack service.

    Workers are grouped into ``racks`` contiguous racks of ``rack_size``
    (worker ``w`` lives in rack ``w // rack_size``). One exchange runs in
    two dependent phases:

    1. **intra-rack** — every rack ring-all-reduces its members' raw
       gradients over the fast local links (per-hop compression contexts,
       exactly as :class:`RingExchangeService`), producing one averaged
       gradient per rack;
    2. **cross-rack** — each rack compresses its aggregate through a
       persistent per-rack uplink context (3LC error feedback corrects
       the scarce link across steps) and pushes it to the upper
       parameter service — a :class:`~repro.distributed.server.ParameterServer`
       or a :class:`~repro.distributed.sharding.ShardedParameterService`
       reused unchanged — which aggregates over racks, updates the global
       model, and compresses shared model deltas that flow back down one
       copy per rack and are then re-broadcast over the rack rings.

    With a single rack no cross-rack tier exists (the service *is* in the
    rack), so the exchange degenerates to a wrapped
    :class:`RingExchangeService` — bit-exact with ``RingTopology`` by
    construction, which the hierarchical parity test pins.

    Per-rack ring contexts are independent objects but share stream keys
    across racks (the underlying :class:`RingAllReduce` keys by
    ``(phase, sender, chunk)``); stochastic schemes therefore draw the
    same per-hop streams in every rack, which is deterministic and keeps
    the 1-rack case exactly the plain ring.
    """

    wants_raw_gradients = True

    def __init__(
        self,
        parameters: list[Parameter],
        optimizer_factory,
        schedule: Schedule,
        scheme: Compressor,
        *,
        racks: int,
        rack_size: int,
        upper_worker_slots: int | None = None,
        upper: str = "single",
        num_shards: int = 2,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
        fusion_plan: FusionPlan | None = None,
    ):
        if racks < 1:
            raise ValueError(f"racks must be >= 1, got {racks}")
        if rack_size < 2:
            raise ValueError(
                f"a rack ring needs >= 2 workers, got rack_size={rack_size}"
            )
        if fusion_plan is not None and racks < 2:
            raise ValueError(fusion_incompatibility("hier", racks=racks))
        self.racks = int(racks)
        self.rack_size = int(rack_size)
        self.schedule = schedule
        self.scheme = scheme
        self.small_tensor_threshold = int(small_tensor_threshold)
        self.fusion_plan = fusion_plan
        self.upper: ParameterServer | ShardedParameterService | None = None
        self._flat: RingExchangeService | None = None

        if self.racks == 1:
            # One rack: every worker shares the fast fabric with the
            # parameter state; no bytes cross a rack boundary and the
            # exchange IS the plain ring.
            self._flat = RingExchangeService(
                parameters,
                optimizer_factory(),
                schedule,
                scheme,
                num_workers=self.rack_size,
                small_tensor_threshold=small_tensor_threshold,
            )
            self.params = self._flat.params
            self.rack_rings = [self._flat.rings]
            self.cross_push_contexts: list[dict] = []
            self.cross_fused_contexts: list[dict[int, FusedBucketContext]] = []
            return

        if upper_worker_slots is None:
            upper_worker_slots = self.racks
        if upper == "single":
            self.upper = ParameterServer(
                parameters,
                optimizer_factory(),
                schedule,
                scheme,
                upper_worker_slots,
                small_tensor_threshold=small_tensor_threshold,
                fusion_plan=fusion_plan,
            )
        elif upper == "sharded":
            self.upper = ShardedParameterService(
                parameters,
                optimizer_factory,
                schedule,
                scheme,
                num_workers=upper_worker_slots,
                num_shards=num_shards,
                small_tensor_threshold=small_tensor_threshold,
                fusion_plan=fusion_plan,
            )
        else:
            raise ValueError(
                f"unknown upper tier {upper!r}; expected 'single' or 'sharded'"
            )
        self.params = self.upper.params
        bypassed = self.bypassed
        self.rack_rings = [
            {
                name: RingAllReduce(
                    self.rack_size,
                    param.shape,
                    compressor=None if name in bypassed else scheme,
                )
                for name, param in self.params.items()
            }
            for _ in range(self.racks)
        ]
        # Persistent per-rack uplink contexts: error feedback corrects the
        # scarce cross-rack link across training steps (paper Figure 2a,
        # applied at rack granularity). Tensors owned by the fusion plan
        # cross the uplink inside fused buckets instead, through per-rack
        # fused contexts (one frame — and under ``lossy`` one shared
        # quantization scale — per bucket per rack).
        fused_names = fusion_plan.fused_names if fusion_plan else frozenset()
        self.cross_push_contexts = [
            {
                name: (
                    scheme.make_bypass_context(
                        param.shape, key=("hpush", rack, name)
                    )
                    if name in bypassed
                    else scheme.make_context(param.shape, key=("hpush", rack, name))
                )
                for name, param in self.params.items()
                if name not in fused_names
            }
            for rack in range(self.racks)
        ]
        self.cross_fused_contexts = [
            {
                bucket.index: scheme.make_fused_context(
                    bucket,
                    key=("hpush-fused", rack, bucket.index),
                    lossy=fusion_plan.lossy,
                )
                for bucket in fusion_plan.buckets
            }
            if fusion_plan is not None
            else {}
            for rack in range(self.racks)
        ]

    # -- ParameterServer surface -------------------------------------------

    @property
    def bypassed(self) -> set[str]:
        return self._flat.bypassed if self._flat is not None else self.upper.bypassed

    @property
    def global_step(self) -> int:
        return (
            self._flat.global_step
            if self._flat is not None
            else self.upper.global_step
        )

    def state_dict(self) -> dict[str, np.ndarray]:
        return (
            self._flat.state_dict()
            if self._flat is not None
            else self.upper.state_dict()
        )

    def cross_routes(self) -> dict[str, str]:
        """Map each tensor to the cross-rack tier its aggregate traverses.

        Sharded uppers name the owning shard's NIC directly; a single
        upper server returns the ``"cross"`` marker, which the engine
        qualifies per rack (``cross:rack<r>``) when it emits records —
        each rack reaches the core over its own uplink.
        """
        if self._flat is not None:
            return {name: "rack0" for name in self.params}
        if isinstance(self.upper, ShardedParameterService):
            return {
                name: f"cross:shard{self.upper.shard_of(name)}"
                for name in self.params
            }
        return {name: "cross" for name in self.params}

    # -- the two-phase exchange --------------------------------------------

    def _reduce_rack(
        self, rack: int, grad_dicts: list[dict[str, np.ndarray]]
    ) -> tuple[dict[str, np.ndarray], dict[str, int], int, float]:
        """Phase 1 for one rack: ring-reduce its members' gradients.

        Returns (rack-averaged gradients, per-tensor busiest-link bytes,
        all-links wire bytes, codec seconds).
        """
        t0 = time.perf_counter()
        reduced: dict[str, np.ndarray] = {}
        link_bytes: dict[str, int] = {}
        wire = 0
        for name in self.params:
            result = self.rack_rings[rack][name].reduce(
                [grads[name] for grads in grad_dicts], average=True
            )
            reduced[name] = result.outputs[0]
            link_bytes[name] = result.max_link_bytes
            wire += result.wire_bytes
        return reduced, link_bytes, wire, time.perf_counter() - t0

    def _compress_uplink(
        self, rack: int, rack_grads: dict[str, np.ndarray]
    ) -> tuple[
        dict[str, CompressionResult | None],
        dict[int, FusedCompressionResult | None],
        float,
    ]:
        """Phase 2 (up) for one rack: compress the aggregate for the core.

        Plan-owned tensors travel as fused buckets (one frame per bucket
        per rack); everything else keeps its per-tensor uplink context.
        """
        t0 = time.perf_counter()
        contexts = self.cross_push_contexts[rack]
        messages = {
            name: contexts[name].compress(rack_grads[name]) for name in contexts
        }
        # All of this rack's fused buckets share one vectorized codec pass.
        fused_contexts = self.cross_fused_contexts[rack]
        results = compress_fused_batch(
            (
                context,
                {name: rack_grads[name] for name in context.bucket.names},
            )
            for context in fused_contexts.values()
        )
        fused = dict(zip(fused_contexts, results))
        return messages, fused, time.perf_counter() - t0

    def _per_tensor_elements(self) -> dict[str, int]:
        w = self.rack_size
        return {
            name: param.size * 2 * (w - 1) // w
            for name, param in self.params.items()
        }

    def _ring_frames(self, racks: int) -> int:
        w = self.rack_size
        return len(self.params) * 2 * (w - 1) * w * racks

    def exchange(
        self,
        grad_dicts: list[dict[str, np.ndarray]],
        *,
        down_racks: frozenset[int] = frozenset(),
        catch_up: dict[int, dict[str, np.ndarray]] | None = None,
    ) -> HierarchicalOutcome:
        """One full BSP step: every rack reduces, then the core aggregates.

        ``down_racks`` (fault injection) are racks whose cross uplink is
        out this step: their members still ring-reduce over the healthy
        rack fabric, but the aggregate never reaches the core — it comes
        back in :attr:`HierarchicalOutcome.down_rack_grads` for the engine
        to apply locally. ``catch_up`` maps a rejoining rack to its banked
        outage-window gradient sum, folded into that rack's uplink push
        (through the persistent uplink error-feedback context) this step.
        """
        expected = self.racks * self.rack_size
        if len(grad_dicts) != expected:
            raise ValueError(
                f"expected {expected} gradient sets "
                f"({self.racks} racks x {self.rack_size}), got {len(grad_dicts)}"
            )
        for rack in down_racks:
            if not (0 <= rack < self.racks):
                raise ValueError(f"down rack {rack} out of range")
        if len(down_racks) >= self.racks:
            raise RuntimeError(
                "every rack is cut off from the core; no exchange possible"
            )
        per_tensor_elements = self._per_tensor_elements()
        if self._flat is not None:
            if down_racks or catch_up:
                raise ValueError(
                    "a single rack has no cross uplink to take down"
                )
            out = self._flat.exchange(grad_dicts)
            return HierarchicalOutcome(
                deltas=out.deltas,
                rack_indices=(0,),
                per_rack_link_bytes=(out.per_tensor_link_bytes,),
                per_tensor_elements=per_tensor_elements,
                intra_wire_bytes=out.wire_bytes,
                intra_elements=out.elements,
                ring_frames=self._ring_frames(1),
                rack_codec_seconds=(out.codec_seconds,),
                cross_push_results=(),
                cross_compress_seconds=(0.0,),
                cross_push_bytes=0,
                cross_push_elements=0,
            )

        rack_grads: list[dict[str, np.ndarray]] = []
        per_rack_link_bytes: list[dict[str, int]] = []
        rack_codec: list[float] = []
        intra_wire = 0
        for rack in range(self.racks):
            group = grad_dicts[rack * self.rack_size : (rack + 1) * self.rack_size]
            reduced, link_bytes, wire, codec = self._reduce_rack(rack, group)
            rack_grads.append(reduced)
            per_rack_link_bytes.append(link_bytes)
            rack_codec.append(codec)
            intra_wire += wire
        intra_elements = self.racks * sum(per_tensor_elements.values())

        if catch_up:
            # Late rejoin push: fold the banked outage-window gradients
            # into the rejoining rack's aggregate before it crosses the
            # uplink — compression errors land in the uplink's persistent
            # error-feedback residual like any other step.
            for rack, backlog in catch_up.items():
                if rack in down_racks:
                    raise ValueError(
                        f"rack {rack} cannot catch up while its uplink is down"
                    )
                grads = rack_grads[rack]
                for name, banked in backlog.items():
                    grads[name] = grads[name] + banked

        # Positions in every per-rack tuple follow ``rack_indices``: up
        # racks first (the only ones with cross-push entries), then the
        # cut-off racks. With no faults this is simply 0..racks-1.
        up_racks = [r for r in range(self.racks) if r not in down_racks]
        order = up_racks + sorted(down_racks)
        cross_results: list[dict[str, CompressionResult | None]] = []
        cross_fused: list[dict[int, FusedCompressionResult | None]] = []
        cross_compress: list[float] = []
        cross_bytes = cross_elements = 0
        for rack in up_racks:
            messages, fused, seconds = self._compress_uplink(
                rack, rack_grads[rack]
            )
            cross_results.append(messages)
            cross_fused.append(fused)
            cross_compress.append(seconds)
            for result in messages.values():
                if result is None:
                    continue
                cross_bytes += result.message.wire_size
                cross_elements += result.message.element_count
            for result in fused.values():
                if result is None:
                    continue
                cross_bytes += result.message.wire_size
                cross_elements += result.message.element_count
        # Down racks pay no uplink compression; pad so the critical-path
        # zip in ``push_compress_seconds`` stays position-aligned.
        cross_compress.extend(0.0 for _ in down_racks)

        if self.fusion_plan is not None:
            pull_batch = self.upper.step(
                cross_results, divisor=len(up_racks), fused_pushes=cross_fused
            )
        else:
            pull_batch = self.upper.step(cross_results, divisor=len(up_racks))

        t0 = time.perf_counter()
        deltas: dict[str, np.ndarray] = {}
        pull_bytes = pull_elements = 0
        for name, result in pull_batch.messages.items():
            if result is None:
                continue
            deltas[name] = self.upper.decompress_pull(name, result.message)
            pull_bytes += result.message.wire_size
            pull_elements += result.message.element_count
        for index, result in pull_batch.fused.items():
            if result is None:
                continue
            deltas.update(
                self.upper.decompress_fused_pull(index, result.message)
            )
            pull_bytes += result.message.wire_size
            pull_elements += result.message.element_count
        pull_decompress = time.perf_counter() - t0

        return HierarchicalOutcome(
            deltas=deltas,
            rack_indices=tuple(order),
            per_rack_link_bytes=tuple(per_rack_link_bytes[r] for r in order),
            per_tensor_elements=per_tensor_elements,
            intra_wire_bytes=intra_wire,
            intra_elements=intra_elements,
            ring_frames=self._ring_frames(self.racks),
            rack_codec_seconds=tuple(rack_codec[r] for r in order),
            cross_push_results=tuple(cross_results),
            cross_compress_seconds=tuple(cross_compress),
            cross_push_bytes=cross_bytes,
            cross_push_elements=cross_elements,
            pull_messages=pull_batch.messages,
            cross_pull_bytes=pull_bytes,
            cross_pull_elements=pull_elements,
            server_decompress_seconds=pull_batch.decompress_seconds,
            server_compress_seconds=pull_batch.compress_seconds,
            pull_decompress_seconds=pull_decompress,
            cross_fused_results=tuple(cross_fused),
            pull_fused=pull_batch.fused,
            down_rack_grads={r: rack_grads[r] for r in sorted(down_racks)},
        )

    def rack_exchange(
        self, rack: int, grad_dicts: list[dict[str, np.ndarray]]
    ) -> HierarchicalOutcome:
        """One rack's asynchronous update: the rack reduces internally and
        pushes its aggregate alone (``divisor=1``); the engine handles the
        per-rack pull stream through its own error-feedback contexts."""
        if self._flat is not None:
            raise RuntimeError(
                "asynchronous hierarchical exchange needs >= 2 racks; "
                "a single rack is plain (synchronous) ring training"
            )
        if not (0 <= rack < self.racks):
            raise ValueError(f"rack must be in [0, {self.racks}), got {rack}")
        if len(grad_dicts) != self.rack_size:
            raise ValueError(
                f"expected {self.rack_size} gradient sets for one rack, "
                f"got {len(grad_dicts)}"
            )
        per_tensor_elements = self._per_tensor_elements()
        reduced, link_bytes, wire, codec = self._reduce_rack(rack, grad_dicts)
        messages, fused, compress_seconds = self._compress_uplink(rack, reduced)
        cross_bytes = cross_elements = 0
        for result in list(messages.values()) + list(fused.values()):
            if result is None:
                continue
            cross_bytes += result.message.wire_size
            cross_elements += result.message.element_count
        if self.fusion_plan is not None:
            pull_batch = self.upper.step(
                [messages], divisor=1, fused_pushes=[fused]
            )
        else:
            pull_batch = self.upper.step([messages], divisor=1)
        return HierarchicalOutcome(
            deltas=None,
            rack_indices=(rack,),
            per_rack_link_bytes=(link_bytes,),
            per_tensor_elements=per_tensor_elements,
            intra_wire_bytes=wire,
            intra_elements=sum(per_tensor_elements.values()),
            ring_frames=self._ring_frames(1),
            rack_codec_seconds=(codec,),
            cross_push_results=(messages,),
            cross_compress_seconds=(compress_seconds,),
            cross_push_bytes=cross_bytes,
            cross_push_elements=cross_elements,
            # Async convention (matching the flat parameter server): the
            # discarded shared-pull compression stays uncharged.
            server_decompress_seconds=pull_batch.decompress_seconds,
            server_compress_seconds=0.0,
            cross_fused_results=(fused,),
        )


class HierarchicalTopology(ExchangeTopology):
    """Rack-local rings feeding a cross-rack parameter service."""

    wants_raw_gradients = True
    supports_event_modes = True
    #: Fused buckets apply to the point-to-point cross-rack tier: rack
    #: aggregates of plan-owned tensors cross the uplink as one frame per
    #: bucket per rack (requires >= 2 racks — one rack has no uplink).
    supports_fusion = True

    def __init__(
        self,
        racks: int = 2,
        rack_size: int = 2,
        *,
        upper: str = "single",
        num_shards: int = 2,
    ):
        if racks < 1:
            raise ValueError(f"racks must be >= 1, got {racks}")
        if rack_size < 2:
            raise ValueError(
                f"a rack ring needs >= 2 workers, got rack_size={rack_size}"
            )
        if upper not in ("single", "sharded"):
            raise ValueError(
                f"unknown upper tier {upper!r}; expected 'single' or 'sharded'"
            )
        self.racks = int(racks)
        self.rack_size = int(rack_size)
        self.upper = upper
        self.num_shards = int(num_shards)
        suffix = f", upper={upper}" if upper != "single" else ""
        self.name = f"hier(racks={racks}, rack={rack_size}{suffix})"

    def fusion_partition(self, sizes: dict[str, int]):
        """Buckets cross the rack uplink whole: one destination for a
        single upper service, the upper shard owner map otherwise."""
        if self.upper != "sharded":
            return None
        return shard_owner_map(sizes, self.num_shards).__getitem__

    def build_service(
        self,
        parameters,
        optimizer_factory,
        schedule,
        scheme,
        *,
        num_workers,
        small_tensor_threshold=SMALL_TENSOR_THRESHOLD,
        fusion_plan=None,
    ) -> HierarchicalExchangeService:
        if fusion_plan is not None and self.racks < 2:
            raise ValueError(fusion_incompatibility("hier", racks=self.racks))
        # The engine passes the sync mode's aggregation slot count:
        # the full worker count for BSP (every rack pushes each step) or 1
        # for async/SSP (racks commit one at a time).
        if num_workers == 1:
            if self.racks < 2:
                raise ValueError(
                    "async/SSP hierarchical runs need >= 2 racks; one rack "
                    "has no cross-rack tier to relax"
                )
            upper_slots = 1
        else:
            if num_workers != self.racks * self.rack_size:
                raise ValueError(
                    f"num_workers={num_workers} is not {self.racks} racks of "
                    f"{self.rack_size} (racks * rack_size must equal the "
                    "worker count)"
                )
            upper_slots = self.racks
        return HierarchicalExchangeService(
            parameters,
            optimizer_factory,
            schedule,
            scheme,
            racks=self.racks,
            rack_size=self.rack_size,
            upper_worker_slots=upper_slots,
            upper=self.upper,
            num_shards=self.num_shards,
            small_tensor_threshold=small_tensor_threshold,
            fusion_plan=fusion_plan,
        )

    def transmission_routes(self, service) -> dict[str, str]:
        """Cross-rack route per tensor (intra-rack collective and
        broadcast records are stamped ``rack<r>`` by the engine)."""
        return service.cross_routes()


#: Registry of topology names accepted by the engine and the harness.
TOPOLOGIES = ("single", "sharded", "ring", "hier")


def make_topology(
    name: str,
    *,
    num_shards: int = 2,
    racks: int = 2,
    rack_size: int = 2,
    hier_upper: str = "single",
) -> ExchangeTopology:
    """Construct a topology from its registry name and knobs."""
    if name == "single":
        return SingleServerTopology()
    if name == "sharded":
        return ShardedTopology(num_shards)
    if name == "ring":
        return RingTopology()
    if name == "hier":
        return HierarchicalTopology(
            racks, rack_size, upper=hier_upper, num_shards=num_shards
        )
    raise ValueError(f"unknown topology {name!r}; expected one of {TOPOLOGIES}")
