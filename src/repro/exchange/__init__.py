"""Unified gradient/delta exchange: topology × sync mode × fused codec path.

The exchange subsystem separates three concerns the original clusters
interleaved (the MLSys layering argument — see ARCHITECTURE.md):

* **what travels** — per-tensor compression contexts or fused buckets
  (:mod:`repro.compression.fusion`);
* **where it travels** — :class:`~repro.exchange.topology.ExchangeTopology`
  (single server, sharded service, ring all-reduce);
* **when it travels** — :class:`~repro.exchange.sync.SyncMode`
  (BSP with full/backup barriers, fully async, SSP).

:class:`~repro.exchange.engine.ExchangeEngine` composes the three;
:class:`~repro.distributed.cluster.Cluster` and
:class:`~repro.distributed.async_cluster.AsyncCluster` are thin facades
over it.
"""

from repro.exchange.engine import EngineConfig, EvalResult, ExchangeEngine, StepLog
from repro.exchange.sync import (
    SYNC_MODES,
    AsyncMode,
    BSPMode,
    SSPMode,
    SyncMode,
    make_sync_mode,
)
from repro.exchange.wireplan import build_wire_plan, fusion_incompatibility
from repro.exchange.topology import (
    TOPOLOGIES,
    ExchangeTopology,
    HierarchicalExchangeService,
    HierarchicalOutcome,
    HierarchicalTopology,
    RingExchangeService,
    RingOutcome,
    RingTopology,
    ShardedTopology,
    SingleServerTopology,
    make_topology,
)

__all__ = [
    "ExchangeEngine",
    "EngineConfig",
    "EvalResult",
    "StepLog",
    "SyncMode",
    "BSPMode",
    "AsyncMode",
    "SSPMode",
    "make_sync_mode",
    "SYNC_MODES",
    "ExchangeTopology",
    "SingleServerTopology",
    "ShardedTopology",
    "RingTopology",
    "RingExchangeService",
    "RingOutcome",
    "HierarchicalTopology",
    "HierarchicalExchangeService",
    "HierarchicalOutcome",
    "make_topology",
    "TOPOLOGIES",
    "build_wire_plan",
    "fusion_incompatibility",
]
