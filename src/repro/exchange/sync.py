"""Synchronization modes: when gradient exchange happens (paper §2.1).

The paper contrasts bulk-synchronous training (its baseline, TensorFlow's
``SyncReplicasOptimizer``) with two relaxations — fully asynchronous
parameter-server updates and stale synchronous parallel (SSP, Ho et al.).
Each relaxation used to carry its own driver loop; the unified
:class:`~repro.exchange.engine.ExchangeEngine` instead asks a
:class:`SyncMode` for the scheduling decisions and keeps one loop per
family:

* :class:`BSPMode` — lock-step global steps arbitrated by a barrier
  (:class:`~repro.distributed.barriers.FullBarrier`, or the backup-worker
  barrier when ``backup_workers > 0``).
* :class:`AsyncMode` — event-driven: the eligible worker with the earliest
  virtual-clock finish time applies its gradient immediately, unbounded
  staleness.
* :class:`SSPMode` — async with eligibility bounded by a staleness
  threshold (``k = 0`` degenerates to lock-step execution).

A mode also pins the RNG stream labels and pull-context key prefix its
legacy facade used, so refactored and seed trainers stay bit-identical.
"""

from __future__ import annotations

import abc

from repro.distributed.barriers import BackupWorkerBarrier, FullBarrier

__all__ = ["SyncMode", "BSPMode", "AsyncMode", "SSPMode", "make_sync_mode", "SYNC_MODES"]


class SyncMode(abc.ABC):
    """How workers coordinate: lock-step barriers or event-driven updates."""

    name: str = "abstract"
    #: True when the engine should run lock-step global steps.
    synchronous: bool = True
    #: RNG stream labels for batcher / augmenter construction. These differ
    #: between the historical BSP and async clusters; preserving them keeps
    #: refactored trainers reproducing seed trajectories exactly.
    batch_stream: str = "batch"
    augment_stream: str = "augment"
    #: Key prefix for engine-owned per-worker pull contexts (async modes).
    pull_key_prefix: str = "pull"

    def service_worker_slots(self, num_workers: int) -> int:
        """Worker count the parameter service should size aggregation for
        (async modes apply one push at a time)."""
        return num_workers

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name!r})"


class BSPMode(SyncMode):
    """Bulk-synchronous parallel, optionally with backup workers."""

    synchronous = True

    def __init__(self, backup_workers: int = 0):
        if backup_workers < 0:
            raise ValueError("backup_workers must be >= 0")
        self.backup_workers = int(backup_workers)
        self.name = "bsp" if backup_workers == 0 else f"bsp(backup={backup_workers})"

    def make_barrier(self, num_workers: int):
        if not (0 <= self.backup_workers < num_workers):
            raise ValueError("backup_workers must be in [0, num_workers)")
        if self.backup_workers == 0:
            return FullBarrier()
        return BackupWorkerBarrier(num_workers - self.backup_workers)


class AsyncMode(SyncMode):
    """Fully asynchronous parameter-server updates (unbounded staleness)."""

    name = "async"
    synchronous = False
    batch_stream = "b"
    augment_stream = "a"
    pull_key_prefix = "apull"
    staleness: int | None = None

    def service_worker_slots(self, num_workers: int) -> int:
        # The server aggregates one worker's push at a time (divisor 1).
        return 1

    def eligible(self, local_steps: dict[int, int]) -> list[int]:
        """Worker ids allowed to run their next local step."""
        return list(local_steps)


class SSPMode(AsyncMode):
    """Stale synchronous parallel: async bounded by a staleness threshold."""

    def __init__(self, staleness: int):
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.staleness = int(staleness)
        self.name = f"ssp(staleness={staleness})"

    def eligible(self, local_steps: dict[int, int]) -> list[int]:
        slowest = min(local_steps.values())
        return [
            wid
            for wid, steps in local_steps.items()
            if steps - slowest <= self.staleness
        ]


#: Registry of sync-mode names accepted by the engine and the harness.
SYNC_MODES = ("bsp", "async", "ssp")


def make_sync_mode(
    name: str, *, backup_workers: int = 0, staleness: int | None = None
) -> SyncMode:
    """Construct a sync mode from its registry name and knobs."""
    if name == "bsp":
        if staleness is not None:
            raise ValueError("staleness only applies to SSP, not 'bsp'")
        return BSPMode(backup_workers)
    if backup_workers:
        raise ValueError(f"backup workers only apply to BSP, not {name!r}")
    if name == "async":
        if staleness is not None:
            raise ValueError("fully async mode has no staleness bound; use 'ssp'")
        return AsyncMode()
    if name == "ssp":
        if staleness is None:
            raise ValueError("SSP requires a staleness bound")
        return SSPMode(staleness)
    raise ValueError(f"unknown sync mode {name!r}; expected one of {SYNC_MODES}")
