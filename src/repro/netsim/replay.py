"""Incremental sweep replay: reuse recordings across sweep points.

A parameter sweep (bandwidth grid, cross-rack RTT curve, core
oversubscription scan) varies knobs that only the *network model* sees —
training dynamics, and therefore the recorded transmission plan, are
bit-identical at every point. Re-training the cluster per point makes
sweep cost scale with training time instead of simulator time, which the
vectorized event core just made cheap.

:class:`SweepReplayCache` breaks that coupling with two explicit cache
levels, each guarded by a hashable invalidation key:

* **Recordings** (:class:`RecordingKey`): the outcome of one training run —
  transmission plans, per-update event streams, traffic accounting, and
  evaluation metrics. The key's ``fingerprint`` must capture every knob
  that can change what the engine records: scheme, step budget, topology,
  sync mode and staleness bound, fusion plan (including bucket capacity),
  cluster shape, and all seeds. Harness code builds the fingerprint by
  *canonicalizing* the simulation-only knobs of its config (link rate,
  cross-rack bandwidth fraction and RTT, time model) so that sweep points
  differing only in those knobs map to the same key — a cache hit replays
  the recorded plans through the simulator and skips training entirely.
* **Simulations**: per-link simulator outputs
  (:class:`~repro.netsim.scheduler.SimulatedRun`, event-driven exchange
  reports), keyed by the recording key *plus* every network-model knob the
  recording key canonicalized away — the
  :class:`~repro.network.bandwidth.LinkSpec`, the
  :class:`~repro.network.timing.StepTimeModel`, and the topology's link
  composition parameters. Two sweep points that share both the recording
  and the link model get the identical simulation object back.

Both levels are exact-match caches over frozen keys: there is no fuzzy
reuse, so a hit is bit-identical to a cold run by construction. Counters
(``hits`` / ``misses`` per level) make sweep drivers' savings observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["RecordingKey", "RecordedTraining", "SweepReplayCache"]


@dataclass(frozen=True)
class RecordingKey:
    """Invalidation key for one cached training recording.

    Attributes
    ----------
    scheme:
        Compression-scheme name (schemes change wire bytes, codec choices,
        and — through error feedback — training dynamics).
    steps:
        Trained step budget (the cosine schedule depends on it).
    fingerprint:
        Hashable projection of the experiment configuration covering every
        remaining recording-relevant knob: topology, sync mode, staleness,
        fusion settings (``fuse_small_tensors`` / ``bucket_elements`` /
        ``fuse_lossy`` — bucket membership is baked into recorded frames,
        so bucket capacity **invalidates**), cluster shape, model/dataset/
        cluster/scheme seeds. Simulation-only knobs must be canonicalized
        out by the caller so they cannot split the cache.
    """

    scheme: str
    steps: int
    fingerprint: Hashable


@dataclass(frozen=True)
class RecordedTraining:
    """Everything one training run contributes to downstream results.

    Immutable snapshot: sequences are tuples so a cache hit cannot be
    mutated by one sweep point and corrupt the next.
    """

    #: Per-step BSP transmission plans (``StepTransmissions`` tuple).
    transmissions: tuple
    #: Per-update event stream (``UpdateTransmissions`` tuple; empty for
    #: synchronous runs).
    update_events: tuple
    #: Periodic evaluations, final evaluation included.
    evals: tuple
    #: Final global-model evaluation.
    final: Any
    #: Per-step mean training loss.
    loss_curve: tuple
    #: The run's traffic meter (byte/frame accounting for every step).
    traffic: Any
    #: Whether the exchange plan was synchronous (selects the simulator).
    synchronous: bool
    #: ``ExchangeEngine.fault_summary()`` of the recording run — churn
    #: event counts and resync accounting, ``None`` when the run had no
    #: fault spec. Cached here because a replay hit never rebuilds the
    #: engine (and the recording key covers the fault spec, so a hit is
    #: guaranteed to describe the same churn).
    fault_summary: dict | None = None


class SweepReplayCache:
    """Two-level exact-match cache shared across a sweep's runners.

    One instance is passed to every
    :class:`~repro.harness.runner.ExperimentRunner` of a sweep; runners
    consult it before training (recordings) and before each per-link
    simulator replay (simulations).
    """

    def __init__(self) -> None:
        self._recordings: dict[RecordingKey, RecordedTraining] = {}
        self._simulations: dict[Hashable, Any] = {}
        self._timelines: dict[Hashable, Any] = {}
        self._extracted: set[RecordingKey] = set()
        self.recording_hits = 0
        self.recording_misses = 0
        self.simulation_hits = 0
        self.simulation_misses = 0
        self.extraction_hits = 0
        self.extraction_misses = 0

    # -- recordings --------------------------------------------------------

    def recording(self, key: RecordingKey) -> RecordedTraining | None:
        """Cached training recording, or ``None`` (counts a hit/miss)."""
        entry = self._recordings.get(key)
        if entry is None:
            self.recording_misses += 1
        else:
            self.recording_hits += 1
        return entry

    def store_recording(self, key: RecordingKey, rec: RecordedTraining) -> None:
        self._recordings[key] = rec

    # -- simulations -------------------------------------------------------

    def simulation(self, key: Hashable) -> Any | None:
        """Cached simulator output, or ``None`` (counts a hit/miss)."""
        entry = self._simulations.get(key)
        if entry is None:
            self.simulation_misses += 1
        else:
            self.simulation_hits += 1
        return entry

    def store_simulation(self, key: Hashable, sim: Any) -> None:
        self._simulations[key] = sim

    # -- extraction --------------------------------------------------------

    def prepare_extraction(self, key: RecordingKey, steps) -> None:
        """Warm a recording's replay artifacts once per :class:`RecordingKey`.

        The first simulation of a new timeline config used to pay the full
        cold-extraction cost (structure signatures, record batches,
        numeric payloads — see ``BENCH_simperf.json``'s
        ``vector_cold_seconds`` ≈ 3–6× warm). Extraction depends only on
        the recording, never on the link or time model, so it is keyed
        here: the first caller extracts (a miss), every later timeline
        config replays warm (a hit). The artifacts live on the step
        objects themselves (:func:`~repro.netsim.vector.warm_extraction`),
        so this set only tracks which recordings already paid.
        """
        if key in self._extracted:
            self.extraction_hits += 1
            return
        from repro.netsim.vector import warm_extraction

        warm_extraction(steps)
        self._extracted.add(key)
        self.extraction_misses += 1

    # -- timelines ---------------------------------------------------------

    def timeline(self, key: Hashable) -> Any | None:
        """Cached backward-profile timeline for one model/batch shape.

        The timeline is *measured* (wall-clock per-layer profiling), so
        sweep points must share one profile for their simulated timings to
        be comparable — and for a cache hit to be bit-identical to the run
        that recorded it.
        """
        return self._timelines.get(key)

    def store_timeline(self, key: Hashable, timeline: Any) -> None:
        self._timelines[key] = timeline

    # -- diagnostics -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Hit/miss counters for sweep drivers' logs and tests."""
        return {
            "recording_hits": self.recording_hits,
            "recording_misses": self.recording_misses,
            "simulation_hits": self.simulation_hits,
            "simulation_misses": self.simulation_misses,
            "extraction_hits": self.extraction_hits,
            "extraction_misses": self.extraction_misses,
            "recordings": len(self._recordings),
            "simulations": len(self._simulations),
            "timelines": len(self._timelines),
        }

    def __len__(self) -> int:
        return len(self._recordings)
