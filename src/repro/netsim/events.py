"""Event data for the discrete-event network simulator.

The simulator replays one training step as a timeline of events: backward
produces layer gradients in reverse registration order, each gradient (or
fused bucket) is codec-compressed, and the resulting wire message is
scheduled onto a modeled link. The exchange engine records the *facts* of
each step — which messages, how many bytes, which route — as
:class:`StepTransmissions`; the scheduler turns them into a
:class:`SimulatedStep` (step time, achieved overlap, per-link utilization,
critical path).

These dataclasses are pure data with no dependency on the exchange layer,
so the engine can populate them the same way it populates
:class:`~repro.network.traffic.StepTraffic` without a layering inversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TransmissionRecord",
    "StepTransmissions",
    "SimulatedStep",
    "SimulatedRun",
]

#: Transmission phases: ``push`` and ``collective`` payloads can overlap
#: the backward pass; ``pull`` payloads exist only after the global update.
PHASES = ("push", "collective", "pull")


@dataclass(frozen=True)
class TransmissionRecord:
    """One wire transmission within a training step.

    Attributes
    ----------
    name:
        Tensor name, or ``"bucket:<i>"`` for a fused bucket, matching the
        engine's traffic accounting.
    params:
        Parameter names whose gradients this message carries. The
        scheduler uses them to look up gradient-ready times in the
        backward timeline; a fused bucket lists every member (the bucket
        transmits only once its *last* member's gradient exists).
    wire_bytes:
        Compressed payload bytes per copy on this record's route. For the
        ring this is the *per-link* volume (what one hop link carries over
        the whole collective), not the all-links sum.
    elements:
        Transmitted element count (used to apportion codec time).
    route:
        Link identifier the topology assigned (``"server"``,
        ``"shard<k>"``, ``"ring"``).
    worker:
        Sending worker id for pushes (compression pipelines are
        per-worker); ``None`` for shared pulls and collectives.
    copies:
        Fan-out multiplier: a shared pull traverses the server link once
        per subscribed worker.
    phase:
        One of :data:`PHASES`.
    frames:
        Wire frames behind this record (a fused bucket is one frame; a
        ring tensor is one frame per node per hop). Drives the per-frame
        protocol overhead.
    """

    name: str
    params: tuple[str, ...]
    wire_bytes: int
    elements: int
    route: str
    worker: int | None = None
    copies: int = 1
    phase: str = "push"
    frames: int = 1

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}, got {self.phase!r}")
        if self.wire_bytes < 0 or self.elements < 0:
            raise ValueError(f"{self.name}: negative size")
        if self.copies < 1:
            raise ValueError(f"{self.name}: copies must be >= 1")
        if self.frames < 1:
            raise ValueError(f"{self.name}: frames must be >= 1")

    @property
    def total_bytes(self) -> int:
        """Bytes this record puts on its route (all copies)."""
        return self.wire_bytes * self.copies


@dataclass(frozen=True)
class StepTransmissions:
    """Everything the simulator needs to replay one training step.

    The codec components mirror the engine's critical-path convention: the
    recorded :attr:`~repro.network.traffic.StepTraffic.codec_seconds` is
    exactly ``push_compress + server_decompress + server_compress +
    pull_decompress``, so a serialized replay reproduces the analytic
    model's step time.
    """

    step: int
    compute_seconds: float
    push_compress_seconds: float = 0.0
    server_decompress_seconds: float = 0.0
    server_compress_seconds: float = 0.0
    pull_decompress_seconds: float = 0.0
    records: tuple[TransmissionRecord, ...] = ()

    @property
    def codec_seconds(self) -> float:
        return (
            self.push_compress_seconds
            + self.server_decompress_seconds
            + self.server_compress_seconds
            + self.pull_decompress_seconds
        )

    @property
    def total_frames(self) -> int:
        return sum(r.frames for r in self.records)


@dataclass(frozen=True)
class SimulatedStep:
    """Simulator output for one step — the honest counterpart of the
    analytic model's ``step_seconds``.

    ``achieved_overlap`` is expressed in the analytic model's own units:
    the fraction of (scaled) compute time under which communication
    actually hid, i.e. the value that makes ``compute + codec +
    max(0, comm - overlap * compute) + overhead`` reproduce the simulated
    step time. Feeding it back into a :class:`StepTimeModel` replaces the
    calibrated 0.9 constant with a measured quantity.
    """

    step: int
    step_seconds: float
    serialized_seconds: float
    compute_seconds: float
    codec_seconds: float
    comm_seconds: float
    overhead_seconds: float
    exposed_seconds: float
    achieved_overlap: float
    link_utilization: dict[str, float] = field(default_factory=dict)
    critical_path: tuple[str, ...] = ()

    @property
    def hidden_seconds(self) -> float:
        """Communication time that ran concurrently with other work."""
        return max(0.0, self.comm_seconds - self.exposed_seconds)

    @property
    def hidden_fraction(self) -> float:
        """Share of communication that did not extend the step.

        ``achieved_overlap`` saturates at 1 whenever more than a full
        compute-pass worth of communication hides (comm-bound regimes);
        this fraction keeps discriminating there — it is what the barrier
        granularity benchmark sweeps.
        """
        if self.comm_seconds <= 0:
            return 0.0
        return self.hidden_seconds / self.comm_seconds

    @property
    def overlap_speedup(self) -> float:
        """Serialized step time over overlapped step time (>= 1)."""
        if self.step_seconds <= 0:
            return 1.0
        return self.serialized_seconds / self.step_seconds


@dataclass(frozen=True)
class SimulatedRun:
    """Aggregate of simulated steps over one training run."""

    steps: tuple[SimulatedStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a simulated run needs at least one step")

    @property
    def total_seconds(self) -> float:
        return sum(s.step_seconds for s in self.steps)

    @property
    def mean_step_seconds(self) -> float:
        return self.total_seconds / len(self.steps)

    @property
    def mean_overlap(self) -> float:
        return sum(s.achieved_overlap for s in self.steps) / len(self.steps)

    @property
    def mean_hidden_fraction(self) -> float:
        return sum(s.hidden_fraction for s in self.steps) / len(self.steps)

    @property
    def mean_link_utilization(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for step in self.steps:
            for link_id, utilization in step.link_utilization.items():
                totals[link_id] = totals.get(link_id, 0.0) + utilization
        return {k: v / len(self.steps) for k, v in totals.items()}
