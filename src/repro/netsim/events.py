"""Event data for the discrete-event network simulator.

The simulator replays one training step as a timeline of events: backward
produces layer gradients in reverse registration order, each gradient (or
fused bucket) is codec-compressed, and the resulting wire message is
scheduled onto a modeled link. The exchange engine records the *facts* of
each step — which messages, how many bytes, which route — as
:class:`StepTransmissions`; the scheduler turns them into a
:class:`SimulatedStep` (step time, achieved overlap, per-link utilization,
critical path).

These dataclasses are pure data with no dependency on the exchange layer,
so the engine can populate them the same way it populates
:class:`~repro.network.traffic.StepTraffic` without a layering inversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

__all__ = [
    "TransmissionRecord",
    "StepTransmissions",
    "UpdateTransmissions",
    "SimulatedStep",
    "SimulatedRun",
    "SimulatedUpdate",
    "SimulatedExchange",
    "updates_from_bsp_steps",
]

#: Transmission phases: ``push`` and ``collective`` payloads can overlap
#: the backward pass; ``pull`` payloads exist only after the global update.
PHASES = ("push", "collective", "pull")


@dataclass(frozen=True)
class TransmissionRecord:
    """One wire transmission within a training step.

    Attributes
    ----------
    name:
        Tensor name, or ``"bucket:<i>"`` for a fused bucket, matching the
        engine's traffic accounting.
    params:
        Parameter names whose gradients this message carries. The
        scheduler uses them to look up gradient-ready times in the
        backward timeline; a fused bucket lists every member (the bucket
        transmits only once its *last* member's gradient exists).
    wire_bytes:
        Compressed payload bytes per copy on this record's route. For the
        ring this is the *per-link* volume (what one hop link carries over
        the whole collective), not the all-links sum.
    elements:
        Transmitted element count (used to apportion codec time).
    route:
        Link identifier the topology assigned (``"server"``,
        ``"shard<k>"``, ``"ring"``).
    worker:
        Sending worker id for pushes (compression pipelines are
        per-worker); ``None`` for shared pulls and collectives.
    copies:
        Fan-out multiplier: a shared pull traverses the server link once
        per subscribed worker.
    phase:
        One of :data:`PHASES`.
    frames:
        Wire frames behind this record (a fused bucket is one frame; a
        ring tensor is one frame per node per hop). Drives the per-frame
        protocol overhead and the per-frame link RTT.
    depends_on:
        Names of records (in the same step or update) whose *transfers*
        must complete before this record may enter its link queue — the
        hierarchical topology's tier coupling: a cross-rack push carries
        a rack-reduced gradient, so it depends on that rack's collective;
        an intra-rack broadcast depends on the cross-rack pull it
        redistributes. Empty for flat topologies.
    """

    name: str
    params: tuple[str, ...]
    wire_bytes: int
    elements: int
    route: str
    worker: int | None = None
    copies: int = 1
    phase: str = "push"
    frames: int = 1
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}, got {self.phase!r}")
        if self.wire_bytes < 0 or self.elements < 0:
            raise ValueError(f"{self.name}: negative size")
        if self.copies < 1:
            raise ValueError(f"{self.name}: copies must be >= 1")
        if self.frames < 1:
            raise ValueError(f"{self.name}: frames must be >= 1")
        if self.name in self.depends_on:
            raise ValueError(f"{self.name}: record cannot depend on itself")

    @property
    def total_bytes(self) -> int:
        """Bytes this record puts on its route (all copies)."""
        return self.wire_bytes * self.copies


@dataclass(frozen=True)
class StepTransmissions:
    """Everything the simulator needs to replay one training step.

    The codec components mirror the engine's critical-path convention: the
    recorded :attr:`~repro.network.traffic.StepTraffic.codec_seconds` is
    exactly ``push_compress + server_decompress + server_compress +
    pull_decompress``, so a serialized replay reproduces the analytic
    model's step time.
    """

    step: int
    compute_seconds: float
    push_compress_seconds: float = 0.0
    server_decompress_seconds: float = 0.0
    server_compress_seconds: float = 0.0
    pull_decompress_seconds: float = 0.0
    records: tuple[TransmissionRecord, ...] = ()
    #: Injected-fault outage floors: ``(route, seconds)`` pairs meaning
    #: the route is unavailable until ``seconds`` into *this step* (a
    #: rejoin delay while the fabric re-converges). All three simulator
    #: cores seed the route's link-free time from the floor.
    link_down: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        for route, down in self.link_down:
            if down < 0.0:
                raise ValueError(
                    f"step {self.step}: link_down[{route!r}] must be >= 0, "
                    f"got {down}"
                )

    @property
    def codec_seconds(self) -> float:
        return (
            self.push_compress_seconds
            + self.server_decompress_seconds
            + self.server_compress_seconds
            + self.pull_decompress_seconds
        )

    @property
    def total_frames(self) -> int:
        return sum(r.frames for r in self.records)


@dataclass(frozen=True)
class UpdateTransmissions:
    """Everything the simulator needs to replay one async/SSP update.

    Event-driven modes have no global step: the scheduling quantum is one
    worker's push/apply/pull round-trip, so the engine records one event
    per *update* instead of one plan per step. Logical timestamps pin the
    event into the global order (``update`` is the commit index), the
    worker's virtual clock locates it in modelled time, and ``staleness``
    is the number of global model versions the pushed gradient was behind
    at commit — the quantity whose distribution the simulator reports.

    The codec components follow the engine's measurement convention:
    ``push_compress`` is the worker's compression of this update's pushes,
    ``server_seconds`` the server's decompress + apply, ``pull_compress``
    the server-side compression of this worker's individual delta stream,
    and ``pull_decompress`` the worker-side decode (zero today — the
    engine applies the compression result's reconstruction directly).
    """

    #: Commit index in the global update order (logical timestamp).
    update: int
    worker: int
    #: The worker's local step index (0-based) this update corresponds to.
    local_step: int
    #: Global model version the push was applied at (pre-apply).
    global_step: int
    #: Global versions between this worker's last pull and this commit.
    staleness: int
    #: Worker virtual clock (straggler-scaled compute time accumulated by
    #: the engine) when the update was dispatched.
    clock_seconds: float
    compute_seconds: float
    push_compress_seconds: float = 0.0
    server_seconds: float = 0.0
    pull_compress_seconds: float = 0.0
    pull_decompress_seconds: float = 0.0
    records: tuple[TransmissionRecord, ...] = ()
    #: Injected-fault outage floors: ``(route, seconds)`` pairs. For a
    #: direct event stream the floor is *absolute* simulated time; when
    #: updates are folded back into lock-step generations the floors
    #: become step-local (max-merged per route), matching
    #: :attr:`StepTransmissions.link_down`.
    link_down: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.staleness < 0:
            raise ValueError(f"update {self.update}: negative staleness")
        for route, down in self.link_down:
            if down < 0.0:
                raise ValueError(
                    f"update {self.update}: link_down[{route!r}] must be "
                    f">= 0, got {down}"
                )

    @property
    def codec_seconds(self) -> float:
        return (
            self.push_compress_seconds
            + self.server_seconds
            + self.pull_compress_seconds
            + self.pull_decompress_seconds
        )

    @cached_property
    def push_records(self) -> tuple[TransmissionRecord, ...]:
        # Cached: the event loop indexes into this tuple once per push
        # arrival, and the records tuple is immutable.
        return tuple(r for r in self.records if r.phase in ("push", "collective"))

    @cached_property
    def pull_records(self) -> tuple[TransmissionRecord, ...]:
        return tuple(r for r in self.records if r.phase == "pull")

    @property
    def total_frames(self) -> int:
        return sum(r.frames for r in self.records)


def updates_from_bsp_steps(
    steps, num_workers: int
) -> tuple[UpdateTransmissions, ...]:
    """Reshape a BSP recording into the lock-step update stream that an
    SSP system at ``staleness=0`` would execute.

    Each BSP step becomes one update per worker: push records keep their
    recorded sending worker (collective records, which have none, ride
    with worker 0), every worker receives one copy of each shared pull,
    and the serialized server costs are split evenly so regrouping the
    generation reproduces the step's totals exactly. This is the bridge
    the staleness-0 parity test walks: feeding the result to the
    event-driven scheduler must reproduce the BSP schedule.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    updates: list[UpdateTransmissions] = []
    for local_step, st in enumerate(steps):
        for worker in range(num_workers):
            records: list[TransmissionRecord] = []
            for r in st.records:
                if r.phase == "pull":
                    if r.frames < r.copies:
                        raise ValueError(
                            f"pull record {r.name!r} has {r.frames} frames "
                            f"for {r.copies} copies; cannot split one "
                            "physical copy per worker"
                        )
                    if worker < r.copies:
                        # Conserve the frame total across the split so the
                        # regrouped generation pays identical per-frame
                        # overhead (remainder frames ride the first copies).
                        frames = r.frames // r.copies + (
                            1 if worker < r.frames % r.copies else 0
                        )
                        records.append(replace(r, copies=1, frames=frames))
                elif (r.worker if r.worker is not None else 0) == worker:
                    records.append(r)
            updates.append(
                UpdateTransmissions(
                    update=local_step * num_workers + worker,
                    worker=worker,
                    local_step=local_step,
                    global_step=local_step,
                    staleness=0,
                    clock_seconds=0.0,
                    compute_seconds=st.compute_seconds,
                    push_compress_seconds=st.push_compress_seconds,
                    server_seconds=st.server_decompress_seconds / num_workers,
                    pull_compress_seconds=st.server_compress_seconds / num_workers,
                    pull_decompress_seconds=st.pull_decompress_seconds,
                    records=tuple(records),
                    link_down=st.link_down,
                )
            )
    return tuple(updates)


@dataclass(frozen=True)
class SimulatedStep:
    """Simulator output for one step — the honest counterpart of the
    analytic model's ``step_seconds``.

    ``achieved_overlap`` is expressed in the analytic model's own units:
    the fraction of (scaled) compute time under which communication
    actually hid, i.e. the value that makes ``compute + codec +
    max(0, comm - overlap * compute) + overhead`` reproduce the simulated
    step time. Feeding it back into a :class:`StepTimeModel` replaces the
    calibrated 0.9 constant with a measured quantity.
    """

    step: int
    step_seconds: float
    serialized_seconds: float
    compute_seconds: float
    codec_seconds: float
    comm_seconds: float
    overhead_seconds: float
    exposed_seconds: float
    achieved_overlap: float
    link_utilization: dict[str, float] = field(default_factory=dict)
    critical_path: tuple[str, ...] = ()

    @property
    def hidden_seconds(self) -> float:
        """Communication time that ran concurrently with other work."""
        return max(0.0, self.comm_seconds - self.exposed_seconds)

    @property
    def hidden_fraction(self) -> float:
        """Share of communication that did not extend the step.

        ``achieved_overlap`` saturates at 1 whenever more than a full
        compute-pass worth of communication hides (comm-bound regimes);
        this fraction keeps discriminating there — it is what the barrier
        granularity benchmark sweeps.
        """
        if self.comm_seconds <= 0:
            return 0.0
        return self.hidden_seconds / self.comm_seconds

    @property
    def overlap_speedup(self) -> float:
        """Serialized step time over overlapped step time (>= 1)."""
        if self.step_seconds <= 0:
            return 1.0
        return self.serialized_seconds / self.step_seconds


@dataclass(frozen=True)
class SimulatedRun:
    """Aggregate of simulated steps over one training run."""

    steps: tuple[SimulatedStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a simulated run needs at least one step")

    @property
    def total_seconds(self) -> float:
        return sum(s.step_seconds for s in self.steps)

    @property
    def mean_step_seconds(self) -> float:
        return self.total_seconds / len(self.steps)

    @property
    def mean_overlap(self) -> float:
        return sum(s.achieved_overlap for s in self.steps) / len(self.steps)

    @property
    def mean_hidden_fraction(self) -> float:
        return sum(s.hidden_fraction for s in self.steps) / len(self.steps)

    @property
    def mean_link_utilization(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for step in self.steps:
            for link_id, utilization in step.link_utilization.items():
                totals[link_id] = totals.get(link_id, 0.0) + utilization
        return {k: v / len(self.steps) for k, v in totals.items()}


@dataclass(frozen=True)
class SimulatedUpdate:
    """Simulator output for one async/SSP update: where it sat on the
    modelled timeline and how stale its gradient was."""

    update: int
    worker: int
    #: When the worker began computing the gradient (after any SSP gate).
    start_seconds: float
    #: When the server applied the push (the global commit point).
    commit_seconds: float
    #: When the worker had decoded its pull and could proceed.
    done_seconds: float
    staleness: int


@dataclass(frozen=True)
class SimulatedExchange:
    """Aggregate of one event-driven (async/SSP) simulated run.

    ``achieved_overlap`` is the *measured* fraction of link-busy time that
    ran concurrently with some worker's backward pass — the event-driven
    counterpart of :attr:`SimulatedStep.hidden_fraction` (per-worker
    compute has no single denominator once workers free-run, so the
    communication-normalized fraction is the honest report).
    ``serialized_seconds`` is the one-global-chain baseline (every
    compute, codec, and transfer strictly sequential), so the ratio to
    ``total_seconds`` measures what asynchrony plus overlap bought.
    """

    updates: tuple[SimulatedUpdate, ...]
    total_seconds: float
    compute_seconds: float
    codec_seconds: float
    comm_seconds: float
    overhead_seconds: float
    serialized_seconds: float
    achieved_overlap: float
    link_utilization: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.updates:
            raise ValueError("a simulated exchange needs at least one update")

    @property
    def mean_update_seconds(self) -> float:
        return self.total_seconds / len(self.updates)

    @property
    def updates_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return len(self.updates) / self.total_seconds

    @property
    def per_worker_updates(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for u in self.updates:
            counts[u.worker] = counts.get(u.worker, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def per_worker_throughput(self) -> dict[int, float]:
        """Committed updates per simulated second, per worker."""
        if self.total_seconds <= 0:
            return {w: 0.0 for w in self.per_worker_updates}
        return {
            worker: count / self.total_seconds
            for worker, count in self.per_worker_updates.items()
        }

    @property
    def staleness_histogram(self) -> dict[int, int]:
        """Effective staleness distribution over committed updates."""
        histogram: dict[int, int] = {}
        for u in self.updates:
            histogram[u.staleness] = histogram.get(u.staleness, 0) + 1
        return dict(sorted(histogram.items()))

    @property
    def mean_staleness(self) -> float:
        return sum(u.staleness for u in self.updates) / len(self.updates)

    @property
    def max_staleness(self) -> int:
        return max(u.staleness for u in self.updates)

    @property
    def overlap_speedup(self) -> float:
        """Serialized chain time over event-driven wall time (>= 1)."""
        if self.total_seconds <= 0:
            return 1.0
        return self.serialized_seconds / self.total_seconds
