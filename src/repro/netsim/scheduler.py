"""The discrete-event step scheduler.

One training step is replayed as a timeline:

1. **Backward** runs layer by layer in reverse registration order; the
   per-layer durations come from a measured
   :class:`~repro.nn.stats.BackwardTimeline`, rescaled so their sum equals
   the step's recorded compute seconds (times the hardware-substitution
   ``compute_scale``). A parameter's gradient exists when its layer's
   slice of the timeline completes.
2. **Push compression** is a serial pipeline per worker: each record costs
   its element-share of the step's measured push-compression seconds, and
   a fused bucket waits for its *last* member gradient before entering the
   pipeline.
3. **Transmission** is FIFO per link: a record starts when it is
   compressed *and* its route's link is free, and occupies the link for
   its transfer time plus its frames' protocol overhead and per-frame
   link RTT. Records with ``depends_on`` (the hierarchical topology's
   tier coupling) additionally wait for the named records' transfers:
   with overlap they pipeline per record (a rack's cross push leaves as
   soon as *that* rack's collective lands), serialized they wait for the
   whole previous tier — which is what makes the serialized schedule
   equal the analytic per-tier sum.
4. The **server phase** (decompress + update + pull compress) starts once
   compute and every push have finished; **pulls** then traverse their
   links (fan-out copies included, dependency tiers in order) and workers
   decompress.

With ``overlap=False`` the schedule is fully serialized — compute, then
all codec, then all transfers — which by construction reproduces the
analytic :class:`~repro.network.timing.StepTimeModel` closed form at
``overlap=0``: the equality is the simulator's calibration test, and the
delta between the two schedules is the honest measure of what per-layer
barriers buy.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import replace
from itertools import count

from repro.netsim.events import (
    SimulatedExchange,
    SimulatedRun,
    SimulatedStep,
    SimulatedUpdate,
    StepTransmissions,
    TransmissionRecord,
    UpdateTransmissions,
)
from repro.netsim.links import LinkModel
from repro.netsim.vector import (
    matches_signature,
    phase_partition,
    replay_run_vectorized,
    replay_vectorized,
    share_signature,
    step_signature,
    wire_occupancy_batch,
)
from repro.network.timing import StepTimeModel
from repro.nn.stats import BackwardTimeline

__all__ = [
    "NetworkSimulator",
    "EventDrivenSimulator",
    "dependency_waves",
    "wire_occupancy_seconds",
    "per_tier_serialized_seconds",
]


def wire_occupancy_seconds(
    link_model: LinkModel, time_model: StepTimeModel, record: TransmissionRecord
) -> float:
    """Time one record holds its link: transfer plus per-frame protocol
    overhead plus per-frame link RTT."""
    spec = link_model.spec(record.route)
    return (
        spec.transfer_seconds(record.total_bytes)
        + (time_model.per_message_overhead + spec.rtt_seconds) * record.frames
    )


def per_tier_serialized_seconds(
    st: StepTransmissions,
    link_model: LinkModel,
    time_model: StepTimeModel,
) -> float:
    """The analytic two-tier closed form for one hierarchical step at
    ``overlap=0``: tiers are fully staged, channels within one tier run
    in parallel (max over routes), transfers on one channel serialize
    (sum per route) — compute + push codec + intra collectives + cross
    pushes + server codec + cross pulls + intra broadcasts + pull codec.

    The serialized dependency-wave replay reproduces this exactly; the
    equality (to 1e-9) is the hierarchical calibration test, shared by
    ``tests/netsim/test_hier_sim.py`` and ``benchmarks/bench_hier.py``.
    """

    def staged(records) -> float:
        by_route: dict[str, float] = {}
        for record in records:
            by_route[record.route] = by_route.get(
                record.route, 0.0
            ) + wire_occupancy_seconds(link_model, time_model, record)
        return max(by_route.values(), default=0.0)

    # Partition the records into the four tiers in one pass instead of
    # re-filtering the full tuple per phase (the old hot-path cost on
    # fleet-scale hierarchical steps).
    collectives: list[TransmissionRecord] = []
    pushes: list[TransmissionRecord] = []
    free_pulls: list[TransmissionRecord] = []
    dep_pulls: list[TransmissionRecord] = []
    for record in st.records:
        if record.phase == "collective":
            collectives.append(record)
        elif record.phase == "push":
            pushes.append(record)
        elif record.depends_on:
            dep_pulls.append(record)
        else:
            free_pulls.append(record)
    return (
        time_model.compute_scale * st.compute_seconds
        + time_model.codec_scale * st.push_compress_seconds
        + staged(collectives)
        + staged(pushes)
        + time_model.codec_scale
        * (st.server_decompress_seconds + st.server_compress_seconds)
        + staged(free_pulls)
        + staged(dep_pulls)
        + time_model.codec_scale * st.pull_decompress_seconds
    )


def dependency_waves(
    records, external_names: frozenset[str] | set[str] = frozenset()
) -> list[list[int]]:
    """Group record indices into dependency tiers.

    Wave ``k`` holds records whose ``depends_on`` names all resolve to
    records in earlier waves (or to ``external_names``, which count as
    already complete — pull records may depend on push-phase records).
    Unknown names and circular dependencies are rejected with a clear
    error; matching is by record name, and when several records share a
    name a dependent waits for the *last* of them.
    """
    known = {r.name for r in records} | set(external_names)
    for record in records:
        missing = [d for d in record.depends_on if d not in known]
        if missing:
            raise ValueError(
                f"record {record.name!r} depends on unknown "
                f"record(s): {missing}"
            )
    placed: set[str] = set(external_names)
    unresolved = list(range(len(records)))
    waves: list[list[int]] = []
    while unresolved:
        wave = [
            index
            for index in unresolved
            if all(d in placed for d in records[index].depends_on)
        ]
        if not wave:
            stuck = ", ".join(records[i].name for i in unresolved)
            raise ValueError(f"circular record dependencies among: {stuck}")
        wave_set = set(wave)
        unresolved = [i for i in unresolved if i not in wave_set]
        # A name "lands" only once every record bearing it is placed.
        wave_names = {records[i].name for i in wave}
        pending = {records[i].name for i in unresolved}
        placed |= wave_names - pending
        waves.append(wave)
    return waves


def _trace_push_codec(
    tracer,
    group: str,
    off: float,
    step: int | None,
    push_records,
    compressed_at,
    compute: float,
    push_cost: float,
    *,
    overlap: bool,
) -> None:
    """Emit push-compression spans matching ``_push_compressed_at``.

    Overlapped schedules run one serial codec pipeline per sending
    worker, so each record gets its own span on a ``codec:w<worker>``
    track ending exactly at its compression-done time (the attribution
    layer reads these to separate codec time from barrier wait).
    Serialized schedules charge one staged block after compute. Costs
    are recomputed with the scalar pipeline's exact expression so the
    scalar and vectorized replays emit bit-identical spans.
    """
    args = {"step": step} if step is not None else {}
    if not overlap:
        if push_cost > 0.0:
            tracer.span(
                group, "codec", "push-compress",
                off + compute, off + compute + push_cost, **args,
            )
        return
    totals: dict[int | None, int] = {}
    for record in push_records:
        totals[record.worker] = totals.get(record.worker, 0) + record.elements
    for index, record in enumerate(push_records):
        total = totals[record.worker]
        cost = push_cost * record.elements / total if total else 0.0
        if cost <= 0.0:
            continue
        end = float(compressed_at[index])
        tracer.span(
            group,
            f"codec:w{record.worker}",
            f"compress:{record.name}",
            off + end - cost,
            off + end,
            worker=record.worker,
            **args,
        )


class NetworkSimulator:
    """Replays recorded step transmissions against a link model.

    Parameters
    ----------
    timeline:
        Measured per-layer backward timeline of the trained model (its
        *fractions* are used; absolute durations are rescaled per step).
    link_model:
        The topology's links (see :mod:`repro.netsim.links`).
    time_model:
        Supplies the hardware-substitution scales and the per-frame
        protocol overhead. Its ``overlap`` constant is ignored — measuring
        that number is this class's purpose.
    overlap:
        ``True`` schedules per-layer transmissions while backward still
        runs; ``False`` serializes compute, codec, and transfer.
    serialized_baseline:
        When True (default), each overlapped ``simulate_step`` also runs
        the serialized schedule so ``SimulatedStep.serialized_seconds``
        and ``overlap_speedup`` are meaningful. Pass False to skip that
        second replay (halving simulation cost) when only the overlapped
        times are consumed; ``serialized_seconds`` then equals
        ``step_seconds``.
    vectorized:
        When True (the default), steps replay through the NumPy batched
        core in :mod:`repro.netsim.vector`; ``False`` keeps the reference
        per-record Python loop. The two schedule identical events (the
        differential property test in ``tests/netsim/test_vector_parity``
        holds them together); the scalar path exists for debugging and
        as the benchmark baseline. ``REPRO_SCALAR_SIM=1`` in the
        environment forces the scalar path regardless of this flag.
    tracer:
        Optional :class:`repro.telemetry.Tracer`. When set, the primary
        replay of each step emits simulated-clock spans — one track per
        link (``link:<route>``, one span per transfer record whose
        duration equals the occupancy charged to ``link_busy``), plus
        compute / server-codec / pull-decompress phase spans — offset by
        ``trace_offset`` so consecutive steps lay out contiguously. The
        serialized-baseline second replay never traces. ``None`` (the
        default) keeps the replay loops span-free.
    trace_group:
        Chrome-trace process name for this simulator's spans.
    """

    def __init__(
        self,
        timeline: BackwardTimeline,
        link_model: LinkModel,
        time_model: StepTimeModel | None = None,
        *,
        overlap: bool = True,
        serialized_baseline: bool = True,
        vectorized: bool = True,
        tracer=None,
        trace_group: str = "netsim",
        priority: str = "registration",
    ):
        if priority not in ("registration", "smallest"):
            raise ValueError(
                f"unknown transmission priority {priority!r}; "
                "expected 'registration' or 'smallest'"
            )
        self.timeline = timeline
        self.link_model = link_model
        self.time_model = time_model or StepTimeModel()
        self.overlap = bool(overlap)
        #: Service order among same-readiness records: "registration"
        #: breaks ties by record name (the engine's registration order);
        #: "smallest" serves the fewest-element record first so short
        #: messages clear the codec pipeline and the link ahead of bulky
        #: ones (shortest-job-first on the wire).
        self.priority = priority
        self.serialized_baseline = bool(serialized_baseline)
        self.tracer = tracer
        self.trace_group = trace_group
        #: Simulated-clock origin of the next traced step (seconds).
        self.trace_offset = 0.0
        self.vectorized = bool(vectorized) and not os.environ.get(
            "REPRO_SCALAR_SIM"
        )
        self._ready_fraction = timeline.ready_fraction()
        # Parameter -> label of the layer that produces its gradient.
        self._layer_of: dict[str, str] = {}
        for layer in timeline.layers:
            for name in layer.params:
                self._layer_of[name] = layer.label

    # -- public API --------------------------------------------------------

    def simulate_step(self, st: StepTransmissions) -> SimulatedStep:
        """Replay one step; see the module docstring for the event order."""
        overlapped = self._replay(st, overlap=self.overlap, trace=True)
        if self.overlap and self.serialized_baseline:
            serialized = self._replay(st, overlap=False)
            return replace(overlapped, serialized_seconds=serialized.step_seconds)
        return overlapped

    def simulate_run(self, steps) -> SimulatedRun:
        """Replay every recorded step of a training run.

        Consecutive steps sharing one record *structure* (same names,
        routes, workers, params, and dependencies — the invariant shape a
        recorded training emits every step) are replayed as a single
        batched pass with a leading step axis
        (:func:`~repro.netsim.vector.replay_run_vectorized`): the waves,
        sorts, and name/route tables are computed once per group, and the
        per-step NumPy fixed costs amortize across the whole run. The
        batched pass is arithmetic-identical to per-step replay, so
        results are bit-equal either way.
        """
        steps = tuple(steps)
        if not steps:
            raise ValueError(
                "no recorded transmissions to simulate — was the engine "
                "built with record_transmissions=True?"
            )
        if self.tracer is not None:
            # Traced runs replay step by step (still vectorized): spans
            # need per-record times laid on one contiguous simulated
            # clock, which the run-batched fast path does not surface.
            simulated = []
            for st in steps:
                sim = self.simulate_step(st)
                self.trace_offset += sim.step_seconds
                simulated.append(sim)
            return SimulatedRun(tuple(simulated))
        if (
            not self.vectorized
            or len(steps) < 2
            or self.priority != "registration"
        ):
            # Non-registration priorities sort by per-step element counts,
            # which vary across steps, so no single service order covers a
            # run-batched group; replay per step (still vectorized).
            return SimulatedRun(tuple(self.simulate_step(s) for s in steps))
        simulated: list[SimulatedStep] = []
        i, n = 0, len(steps)
        while i < n:
            # Only the group leader materializes a signature tuple;
            # followers are checked field-by-field against it (no per-step
            # tuple allocation on the warm path) and then share the
            # leader's tuple so the next replay compares by identity.
            sig = step_signature(steps[i])
            j = i + 1
            while j < n and matches_signature(steps[j], sig):
                share_signature(steps[j], sig)
                j += 1
            group = steps[i:j]
            if len(group) >= 2:
                simulated.extend(self._simulate_group(group))
            else:
                simulated.append(self.simulate_step(group[0]))
            i = j
        return SimulatedRun(tuple(simulated))

    def _simulate_group(self, group) -> list[SimulatedStep]:
        """Batched replay of structurally identical steps (both schedules)."""
        overlapped = replay_run_vectorized(self, group, overlap=self.overlap)
        if overlapped is None:
            # A step with non-positive compute cannot share the group's
            # compression-pipeline order; replay the group step by step.
            return [self.simulate_step(s) for s in group]
        if self.overlap and self.serialized_baseline:
            serialized = replay_run_vectorized(self, group, overlap=False)
            overlapped = [
                replace(o, serialized_seconds=s.step_seconds)
                for o, s in zip(overlapped, serialized)
            ]
        return overlapped

    # -- gradient readiness ------------------------------------------------

    def _grad_ready_seconds(self, record: TransmissionRecord, compute: float) -> float:
        """Time at which every gradient this record carries exists."""
        if not record.params:
            return compute
        # Parameters absent from the timeline (no owning leaf module) are
        # conservatively ready only when backward completes.
        return max(
            self._ready_fraction.get(name, 1.0) * compute for name in record.params
        )

    def _producing_layer(self, record: TransmissionRecord) -> str:
        if not record.params:
            return "backward:end"
        last = max(
            record.params, key=lambda name: self._ready_fraction.get(name, 1.0)
        )
        return f"backward:{self._layer_of.get(last, 'end')}"

    def _push_compressed_at(
        self,
        push_records,
        compute: float,
        push_cost: float,
        *,
        overlap: bool,
    ) -> dict[int, float]:
        """Compression-done times (relative to compute start) per record.

        One serial pipeline per sending worker: records enter in
        gradient-ready order and cost their element-share of the push
        compression budget. Shared by the step replay and the per-update
        event replay — the staleness-0 parity anchor requires the two to
        schedule compression identically.
        """
        if not overlap:
            return {i: compute + push_cost for i in range(len(push_records))}
        pipeline_elements: dict[int | None, int] = {}
        for record in push_records:
            pipeline_elements[record.worker] = (
                pipeline_elements.get(record.worker, 0) + record.elements
            )
        compressed_at: dict[int, float] = {}
        pipeline_free: dict[int | None, float] = {}
        if self.priority == "smallest":
            ordered = sorted(
                range(len(push_records)),
                key=lambda i: (
                    self._grad_ready_seconds(push_records[i], compute),
                    push_records[i].elements,
                    push_records[i].name,
                ),
            )
        else:
            ordered = sorted(
                range(len(push_records)),
                key=lambda i: (
                    self._grad_ready_seconds(push_records[i], compute),
                    push_records[i].name,
                ),
            )
        for index in ordered:
            record = push_records[index]
            total = pipeline_elements[record.worker]
            cost = push_cost * record.elements / total if total else 0.0
            start = max(
                self._grad_ready_seconds(record, compute),
                pipeline_free.get(record.worker, 0.0),
            )
            compressed_at[index] = start + cost
            pipeline_free[record.worker] = compressed_at[index]
        return compressed_at

    def _occupancy_seconds(self, record: TransmissionRecord) -> float:
        return wire_occupancy_seconds(self.link_model, self.time_model, record)

    # -- the event replay --------------------------------------------------

    def _replay(
        self, st: StepTransmissions, *, overlap: bool, trace: bool = False
    ) -> SimulatedStep:
        if self.vectorized:
            return replay_vectorized(self, st, overlap=overlap, trace=trace)
        return self._replay_scalar(st, overlap=overlap, trace=trace)

    def _replay_scalar(
        self, st: StepTransmissions, *, overlap: bool, trace: bool = False
    ) -> SimulatedStep:
        """Reference per-record replay (see ``vectorized`` above)."""
        tracer = self.tracer if trace else None
        off = self.trace_offset
        tm = self.time_model
        pmo = tm.per_message_overhead
        compute = tm.compute_scale * st.compute_seconds

        push_records, pull_records = phase_partition(st.records)

        # -- push compression: one serial pipeline per sending worker ------
        push_cost = tm.codec_scale * st.push_compress_seconds
        compressed_at = self._push_compressed_at(
            push_records, compute, push_cost, overlap=overlap
        )
        if tracer is not None:
            _trace_push_codec(
                tracer, self.trace_group, off, st.step,
                push_records, compressed_at, compute, push_cost,
                overlap=overlap,
            )

        # -- push transmission: FIFO per link, in dependency tiers ---------
        # Injected-fault outage floors seed the per-route free times: a
        # route that is down until T within this step serves nothing
        # earlier. Outage windows ride their own trace track so the
        # link:<route> span totals still reconcile with link_busy.
        link_free: dict[str, float] = {}
        for route, down in st.link_down:
            link_free[route] = max(link_free.get(route, 0.0), down)
            if tracer is not None and down > 0.0:
                tracer.span(
                    self.trace_group,
                    f"outage:{route}",
                    "link-down",
                    off,
                    off + down,
                    step=st.step,
                )
        link_busy: dict[str, float] = {}
        end_by_name: dict[str, float] = {}
        push_end = compute if not push_records else 0.0
        bottleneck = None  # (record, start_bound_by_link)
        tier_floor = 0.0  # serialized mode: previous tier's last transfer
        for wave in dependency_waves(push_records):
            ready: dict[int, float] = {}
            for index in wave:
                record = push_records[index]
                if overlap:
                    dep_end = max(
                        (end_by_name[d] for d in record.depends_on), default=0.0
                    )
                else:
                    # Serialized schedules are fully staged: a tier starts
                    # only after the whole previous tier has landed, which
                    # is what makes the schedule equal the analytic
                    # per-tier sum (the hierarchical calibration test).
                    dep_end = tier_floor if record.depends_on else 0.0
                ready[index] = max(compressed_at[index], dep_end)
            wave_end = 0.0
            if self.priority == "smallest":
                wave_order = sorted(
                    ready,
                    key=lambda i: (
                        ready[i],
                        push_records[i].elements,
                        push_records[i].name,
                    ),
                )
            else:
                wave_order = sorted(
                    ready, key=lambda i: (ready[i], push_records[i].name)
                )
            for index in wave_order:
                record = push_records[index]
                free = link_free.get(record.route, 0.0)
                start = max(ready[index], free)
                duration = self._occupancy_seconds(record)
                end = start + duration
                link_free[record.route] = end
                link_busy[record.route] = link_busy.get(record.route, 0.0) + duration
                if tracer is not None:
                    tracer.span(
                        self.trace_group,
                        f"link:{record.route}",
                        record.name,
                        off + start,
                        off + end,
                        phase=record.phase,
                        step=st.step,
                        worker=record.worker,
                    )
                end_by_name[record.name] = max(
                    end_by_name.get(record.name, 0.0), end
                )
                wave_end = max(wave_end, end)
                if end > push_end:
                    push_end = end
                    bottleneck = (record, start > ready[index] + 1e-15)
            tier_floor = max(tier_floor, wave_end)
        # The barrier cannot release before the slowest worker's backward;
        # when that floor binds, the step is compute-bound, not bound by
        # the last transfer.
        barrier_floor = compute + (push_cost if not overlap else 0.0)
        if barrier_floor > push_end:
            push_end = barrier_floor
            bottleneck = None

        # -- server phase and pulls ----------------------------------------
        server_cost = tm.codec_scale * (
            st.server_decompress_seconds + st.server_compress_seconds
        )
        pull_ready = push_end + server_cost
        phase_end = pull_ready
        last_pull: TransmissionRecord | None = None
        push_names = frozenset(r.name for r in push_records)
        tier_floor = pull_ready
        for wave in dependency_waves(pull_records, push_names):
            wave_end = tier_floor
            if self.priority == "smallest":
                pull_order = sorted(
                    wave,
                    key=lambda i: (
                        pull_records[i].elements,
                        pull_records[i].name,
                    ),
                )
            else:
                pull_order = sorted(wave, key=lambda i: pull_records[i].name)
            for index in pull_order:
                record = pull_records[index]
                if overlap:
                    dep_end = max(
                        (end_by_name.get(d, 0.0) for d in record.depends_on),
                        default=0.0,
                    )
                else:
                    dep_end = tier_floor if record.depends_on else 0.0
                free = max(pull_ready, dep_end, link_free.get(record.route, 0.0))
                duration = self._occupancy_seconds(record)
                end = free + duration
                link_free[record.route] = end
                link_busy[record.route] = link_busy.get(record.route, 0.0) + duration
                if tracer is not None:
                    tracer.span(
                        self.trace_group,
                        f"link:{record.route}",
                        record.name,
                        off + free,
                        off + end,
                        phase=record.phase,
                        step=st.step,
                        worker=record.worker,
                    )
                end_by_name[record.name] = max(
                    end_by_name.get(record.name, 0.0), end
                )
                wave_end = max(wave_end, end)
                if end > phase_end:
                    phase_end = end
                    last_pull = record
            tier_floor = wave_end
        pull_cost = tm.codec_scale * st.pull_decompress_seconds
        step_seconds = phase_end + pull_cost
        if tracer is not None:
            tracer.span(
                self.trace_group, "compute", "backward", off, off + compute,
                step=st.step,
            )
            if server_cost > 0:
                tracer.span(
                    self.trace_group, "server", "server-codec",
                    off + push_end, off + pull_ready, step=st.step,
                )
            if pull_cost > 0:
                tracer.span(
                    self.trace_group, "compute", "pull-decompress",
                    off + phase_end, off + step_seconds, step=st.step,
                )

        # -- bookkeeping ----------------------------------------------------
        comm = sum(
            self.link_model.transfer_seconds(r.route, r.total_bytes)
            for r in st.records
        )
        overhead = sum(
            (pmo + self.link_model.spec(r.route).rtt_seconds) * r.frames
            for r in st.records
        )
        codec = push_cost + server_cost + pull_cost
        exposed = max(0.0, step_seconds - compute - codec - overhead)
        if compute > 0:
            achieved = min(1.0, max(0.0, (comm - exposed) / compute))
        else:
            achieved = 0.0
        utilization = {
            link_id: (link_busy.get(link_id, 0.0) / step_seconds if step_seconds else 0.0)
            for link_id in self.link_model.link_ids
        }
        return SimulatedStep(
            step=st.step,
            step_seconds=step_seconds,
            serialized_seconds=step_seconds,
            compute_seconds=compute,
            codec_seconds=codec,
            comm_seconds=comm,
            overhead_seconds=overhead,
            exposed_seconds=exposed,
            achieved_overlap=achieved if overlap else 0.0,
            link_utilization=utilization,
            critical_path=self._critical_path(
                bottleneck, last_pull, overlap, bool(pull_records)
            ),
        )

    def _critical_path(
        self,
        bottleneck: tuple[TransmissionRecord, bool] | None,
        last_pull: TransmissionRecord | None,
        overlap: bool,
        has_pulls: bool,
    ) -> tuple[str, ...]:
        """Label the chain of events that set this step's duration."""
        path: list[str] = []
        if bottleneck is None:
            path.append("backward:end")
        else:
            record, link_bound = bottleneck
            path.append(
                self._producing_layer(record) if overlap else "backward:end"
            )
            worker = f"@w{record.worker}" if record.worker is not None else ""
            path.append(f"compress:{record.name}{worker}")
            if link_bound:
                path.append(f"queue:{record.route}")
            path.append(f"xfer:{record.route}:{record.name}")
        if has_pulls:
            path.append("server-codec")
            if last_pull is not None:
                path.append(f"xfer:{last_pull.route}:{last_pull.name}")
            path.append("pull-decompress")
        return tuple(path)


# Event priorities: at equal timestamps, finish in-flight work (transfers,
# server commits) before dispatching new work, so ready/gate state is
# current when a worker starts its next local step.
_P_XFER, _P_COMMIT, _P_PULLS, _P_ENQUEUE, _P_START = range(5)


class EventDrivenSimulator:
    """Replays recorded async/SSP update streams against a link model.

    Where :class:`NetworkSimulator` replays one *global step* at a time,
    this scheduler replays a stream of per-update events
    (:class:`~repro.netsim.events.UpdateTransmissions`) with a virtual
    clock per worker:

    * each worker cycles compute → push compression → push transfer →
      server apply (the commit) → individual pull transfer → pull decode,
      with compute/codec durations taken from the recording;
    * links are FIFO shared resources — updates from different workers
      interleave in arrival order, so a hot server NIC honestly delays
      whoever pushed last;
    * the server is a serial resource: one decompress+apply+pull-compress
      at a time, in push-arrival order;
    * under SSP, a worker whose next local step would exceed the staleness
      bound *blocks* until the lagging workers' commits release it — the
      barrier is an event on the timeline, not a constant.

    ``staleness=None`` is fully asynchronous (no gate); ``staleness=0``
    degenerates to lock-step execution, which the simulator replays as
    synchronized generations through the step scheduler — by construction
    (and by test) the staleness-0 schedule reproduces the BSP schedule,
    anchoring the event-driven modes to the calibrated BSP path.

    With ``overlap=True``, push records enter the worker's compression
    pipeline as their layer gradients become ready (same per-layer
    timeline as the step scheduler); ``overlap=False`` holds every push
    until compute and compression fully finish. Cross-worker pipelining is
    inherent to the event-driven modes and happens in both cases;
    ``SimulatedExchange.serialized_seconds`` reports the one-global-chain
    baseline for comparison.
    """

    def __init__(
        self,
        timeline: BackwardTimeline,
        link_model: LinkModel,
        time_model: StepTimeModel | None = None,
        *,
        staleness: int | None = None,
        overlap: bool = True,
        vectorized: bool = True,
        tracer=None,
        trace_group: str = "netsim-events",
        priority: str = "registration",
    ):
        if staleness is not None and staleness < 0:
            raise ValueError("staleness must be >= 0 or None")
        self.staleness = staleness
        self.overlap = bool(overlap)
        self.link_model = link_model
        self.time_model = time_model or StepTimeModel()
        # Optional telemetry tracer (simulated-clock spans: one track per
        # worker/rack unit, per link, and for the server commit pipeline).
        self.tracer = tracer
        self.trace_group = trace_group
        # The step scheduler carries the per-layer readiness machinery and
        # replays the lock-step (staleness=0) generations.
        self._steps = NetworkSimulator(
            timeline,
            link_model,
            self.time_model,
            overlap=overlap,
            serialized_baseline=False,
            vectorized=vectorized,
            tracer=tracer,
            trace_group=trace_group,
            priority=priority,
        )

    # -- public API --------------------------------------------------------

    def simulate(self, updates) -> SimulatedExchange:
        """Replay a recorded update stream; see the class docstring."""
        events = tuple(sorted(updates, key=lambda e: e.update))
        if not events:
            raise ValueError(
                "no recorded update events to simulate — was the engine "
                "built with record_transmissions=True in an async/SSP mode?"
            )
        for e in events:
            # Surface unknown/circular record dependencies up front with
            # the step scheduler's error messages instead of deadlocking
            # the event loop.
            dependency_waves(e.records)
        if self.staleness == 0:
            return self._simulate_lockstep(events)
        return self._simulate_events(events)

    # -- staleness=0: synchronized generations -----------------------------

    @staticmethod
    def _generation_step(generation: list[UpdateTransmissions]) -> StepTransmissions:
        """Fold one lock-step generation into an equivalent BSP step.

        Workers run in parallel (max compute / push-compress / pull
        decode); the server serializes every update's apply and pull
        compression (sums). Outage floors max-merge per route (the
        split copies of one step all carry the same floor, so the merge
        is idempotent). The inverse of
        :func:`~repro.netsim.events.updates_from_bsp_steps`.
        """
        down: dict[str, float] = {}
        for e in generation:
            for route, floor in e.link_down:
                down[route] = max(down.get(route, 0.0), floor)
        return StepTransmissions(
            step=generation[0].local_step,
            compute_seconds=max(e.compute_seconds for e in generation),
            push_compress_seconds=max(e.push_compress_seconds for e in generation),
            server_decompress_seconds=sum(e.server_seconds for e in generation),
            server_compress_seconds=sum(e.pull_compress_seconds for e in generation),
            pull_decompress_seconds=max(
                e.pull_decompress_seconds for e in generation
            ),
            records=tuple(r for e in generation for r in e.records),
            link_down=tuple(sorted(down.items())),
        )

    def _simulate_lockstep(self, events) -> SimulatedExchange:
        generations: dict[int, list[UpdateTransmissions]] = {}
        for e in events:
            generations.setdefault(e.local_step, []).append(e)
        now = 0.0
        sim_updates: list[SimulatedUpdate] = []
        compute = codec = comm = overhead = hidden = 0.0
        busy: dict[str, float] = {}
        for local_step in sorted(generations):
            generation = generations[local_step]
            # Traced lockstep generations lay out on one contiguous
            # simulated clock via the step scheduler's trace offset.
            self._steps.trace_offset = now
            step = self._steps._replay(
                self._generation_step(generation),
                overlap=self.overlap,
                trace=self.tracer is not None,
            )
            end = now + step.step_seconds
            sim_updates.extend(
                SimulatedUpdate(
                    update=e.update,
                    worker=e.worker,
                    start_seconds=now,
                    commit_seconds=end,
                    done_seconds=end,
                    staleness=e.staleness,
                )
                for e in generation
            )
            compute += step.compute_seconds
            codec += step.codec_seconds
            comm += step.comm_seconds
            overhead += step.overhead_seconds
            hidden += step.hidden_seconds
            for link_id, utilization in step.link_utilization.items():
                busy[link_id] = busy.get(link_id, 0.0) + (
                    utilization * step.step_seconds
                )
            now = end
        return SimulatedExchange(
            updates=tuple(sim_updates),
            total_seconds=now,
            compute_seconds=compute,
            codec_seconds=codec,
            comm_seconds=comm,
            overhead_seconds=overhead,
            serialized_seconds=compute + codec + comm + overhead,
            achieved_overlap=(hidden / comm) if comm > 0 else 0.0,
            link_utilization={
                link_id: (busy.get(link_id, 0.0) / now if now else 0.0)
                for link_id in self.link_model.link_ids
            },
        )

    # -- async / staleness>0: the discrete-event loop ----------------------

    def _simulate_events(self, events) -> SimulatedExchange:
        tm = self.time_model
        codec_scale = tm.codec_scale
        tracer = self.tracer
        trace_group = self.trace_group

        # Resolve every record's wire occupancy up front in one batched
        # pass (and bank the comm/overhead totals from the same arrays);
        # the event loop then reads plain floats instead of re-deriving
        # link specs per enqueue.
        flat_records: list[TransmissionRecord] = []
        shape: list[tuple[int, int]] = []
        for e in events:
            pushes, pulls = e.push_records, e.pull_records
            flat_records.extend(pushes)
            flat_records.extend(pulls)
            shape.append((len(pushes), len(pulls)))
        occ_all, comm, overhead = wire_occupancy_batch(
            flat_records, self.link_model, tm
        )
        occ_list = occ_all.tolist()
        push_occ: dict[int, list[float]] = {}
        pull_occ: dict[int, list[float]] = {}
        pos = 0
        for e, (n_push, n_pull) in zip(events, shape):
            push_occ[e.update] = occ_list[pos : pos + n_push]
            pos += n_push
            pull_occ[e.update] = occ_list[pos : pos + n_pull]
            pos += n_pull

        # Injected-fault outage floors (absolute simulated time): a route
        # serves nothing before its floor. Windows ride dedicated
        # outage:<route> tracks so link:<route> span totals still
        # reconcile with link_busy.
        down_until: dict[str, float] = {}
        for e in events:
            for route, floor in e.link_down:
                down_until[route] = max(down_until.get(route, 0.0), floor)
        if tracer is not None:
            for route, floor in sorted(down_until.items()):
                if floor > 0.0:
                    tracer.span(
                        trace_group, f"outage:{route}", "link-down", 0.0, floor
                    )

        by_worker: dict[int, list[UpdateTransmissions]] = {}
        for e in events:
            by_worker.setdefault(e.worker, []).append(e)
        workers = sorted(by_worker)

        next_index = {w: 0 for w in workers}
        ready = {w: 0.0 for w in workers}
        committed = {w: 0 for w in workers}
        blocked: set[int] = set()

        link_queue: dict[str, deque] = {}
        link_serving: dict[str, bool] = {}
        link_busy: dict[str, float] = {}
        server_free = 0.0

        compute_intervals: list[tuple[float, float]] = []
        transfer_intervals: list[tuple[float, float]] = []
        finished: list[SimulatedUpdate] = []
        totals = {"compute": 0.0, "codec": 0.0}

        heap: list = []
        sequence = count()

        def schedule(time: float, priority: int, fn) -> None:
            heapq.heappush(heap, (time, priority, next(sequence), fn))

        def gate_open(w: int) -> bool:
            """May worker ``w`` start its next local step now?"""
            if self.staleness is None:
                return True
            k = next_index[w]
            floor = k - self.staleness
            return all(
                committed[v] >= min(floor, len(by_worker[v])) for v in workers
            )

        # -- shared links: FIFO service in arrival order -------------------
        def enqueue(
            route: str,
            duration: float,
            on_done,
            now: float,
            label: str = "xfer",
            span_args: dict | None = None,
        ) -> None:
            queue = link_queue.setdefault(route, deque())
            queue.append((duration, on_done, label, span_args))
            if not link_serving.get(route, False):
                serve_next(route, now)

        def serve_next(route: str, now: float) -> None:
            queue = link_queue[route]
            if not queue:
                link_serving[route] = False
                return
            link_serving[route] = True
            floor = down_until.get(route, 0.0)
            if now < floor:
                # The route is down: hold the head of the queue (keeping
                # the link marked serving so no other enqueue races past)
                # and retry when the outage lifts.
                schedule(
                    floor, _P_ENQUEUE, lambda t, r=route: serve_next(r, t)
                )
                return
            duration, on_done, label, span_args = queue.popleft()
            end = now + duration
            transfer_intervals.append((now, end))
            link_busy[route] = link_busy.get(route, 0.0) + duration
            if tracer is not None:
                # Span duration equals the occupancy charged to link_busy,
                # so per-link span sums reconcile with link_utilization.
                tracer.span(
                    trace_group, f"link:{route}", label, now, end,
                    **(span_args or {}),
                )

            def finish(t: float) -> None:
                on_done(t)
                serve_next(route, t)

            schedule(end, _P_XFER, finish)

        # -- worker state machine ------------------------------------------
        def start_update(w: int, now: float) -> None:
            e = by_worker[w][next_index[w]]
            compute = tm.compute_scale * e.compute_seconds
            compute_end = now + compute
            compute_intervals.append((now, compute_end))
            if tracer is not None:
                tracer.span(
                    trace_group, f"worker{w}", f"compute:u{e.update}",
                    now, compute_end, staleness=e.staleness,
                )
            totals["compute"] += compute
            push_cost = codec_scale * e.push_compress_seconds
            totals["codec"] += push_cost + codec_scale * (
                e.server_seconds + e.pull_compress_seconds + e.pull_decompress_seconds
            )
            pushes = e.push_records
            flight = {
                "event": e,
                "start": now,
                "pushes_left": len(pushes),
                "push_done": {},
            }

            if not pushes:
                if tracer is not None and push_cost > 0.0:
                    tracer.span(
                        trace_group, f"codec:w{w}", f"push-compress:u{e.update}",
                        compute_end, compute_end + push_cost,
                        worker=w, update=e.update,
                    )
                schedule(
                    compute_end + push_cost,
                    _P_ENQUEUE,
                    lambda t, f=flight: pushes_arrived(f, t),
                )
                return
            # Same per-worker compression pipeline as the step replay,
            # offset to this update's compute start. Records with
            # dependencies (hierarchical tier coupling) enter their link
            # queue only once every named record's transfer completed.
            compressed_at = self._steps._push_compressed_at(
                pushes, compute, push_cost, overlap=self.overlap
            )
            if tracer is not None and push_cost > 0.0:
                if not self.overlap:
                    tracer.span(
                        trace_group, f"codec:w{w}", f"push-compress:u{e.update}",
                        compute_end, compute_end + push_cost,
                        worker=w, update=e.update,
                    )
                else:
                    # Mirror the serial per-worker compression pipeline the
                    # step replay traces: each record's slot ends at its
                    # compressed_at offset and costs its share of push_cost.
                    pipe_totals: dict[int | None, int] = {}
                    for record in pushes:
                        pipe_totals[record.worker] = (
                            pipe_totals.get(record.worker, 0) + record.elements
                        )
                    for index, record in enumerate(pushes):
                        total = pipe_totals[record.worker]
                        cost = (
                            push_cost * record.elements / total if total else 0.0
                        )
                        if cost <= 0.0:
                            continue
                        slot_end = now + compressed_at[index]
                        tracer.span(
                            trace_group, f"codec:w{w}",
                            f"compress:{record.name}",
                            slot_end - cost, slot_end,
                            worker=w, update=e.update,
                        )
            waiting: dict[int, tuple[str, ...]] = {}

            occ = push_occ[e.update]

            def enqueue_push(index: int, t: float) -> None:
                record = pushes[index]
                enqueue(
                    record.route,
                    occ[index],
                    lambda td, i=index: push_arrived(flight, i, td),
                    t,
                    record.name,
                    {
                        "phase": record.phase,
                        "worker": record.worker,
                        "update": e.update,
                    },
                )

            def release_ready(now_t: float) -> None:
                done = flight["push_done"]
                for index in sorted(waiting):
                    if all(d in done for d in waiting[index]):
                        del waiting[index]
                        # The record enters its link queue only once both
                        # its dependencies landed (now_t) and its own
                        # compression slot passed — schedule the enqueue
                        # rather than queueing early, so a busy link does
                        # not serve it before it is compressed.
                        schedule(
                            max(now_t, now + compressed_at[index]),
                            _P_ENQUEUE,
                            lambda t, i=index: enqueue_push(i, t),
                        )

            flight["release_pushes"] = release_ready
            for index, record in enumerate(pushes):
                if record.depends_on:
                    waiting[index] = record.depends_on
                else:
                    schedule(
                        now + compressed_at[index],
                        _P_ENQUEUE,
                        lambda t, i=index: enqueue_push(i, t),
                    )

        def push_arrived(flight: dict, index: int, now: float) -> None:
            record = flight["event"].push_records[index]
            done = flight["push_done"]
            done[record.name] = max(done.get(record.name, 0.0), now)
            flight["pushes_left"] -= 1
            flight["release_pushes"](now)
            if flight["pushes_left"] == 0:
                pushes_arrived(flight, now)

        def pushes_arrived(flight: dict, now: float) -> None:
            """All of this update's pushes reached the server: serialize
            the apply (commit) and the per-worker pull compression."""
            nonlocal server_free
            e = flight["event"]
            begin = max(now, server_free)
            commit = begin + codec_scale * e.server_seconds
            pulls_ready = commit + codec_scale * e.pull_compress_seconds
            server_free = pulls_ready
            if tracer is not None:
                tracer.span(
                    trace_group, "server", f"commit:u{e.update}",
                    begin, pulls_ready, worker=e.worker,
                )
            flight["commit"] = commit
            schedule(commit, _P_COMMIT, lambda t, f=flight: committed_at(f, t))
            schedule(pulls_ready, _P_PULLS, lambda t, f=flight: send_pulls(f, t))

        def committed_at(flight: dict, now: float) -> None:
            w = flight["event"].worker
            committed[w] += 1
            for v in sorted(blocked):
                if gate_open(v):
                    blocked.discard(v)
                    schedule(
                        max(ready[v], now), _P_START, lambda t, v=v: start_update(v, t)
                    )

        def send_pulls(flight: dict, now: float) -> None:
            e = flight["event"]
            pulls = e.pull_records
            flight["pulls_left"] = len(pulls)
            if not pulls:
                update_done(flight, now)
                return
            # Push transfers all landed before the server phase, so a pull
            # depending on a push-phase record is immediately ready; a
            # pull depending on another pull (the intra-rack broadcast of
            # a cross-rack delta) waits for that transfer.
            satisfied = {r.name for r in e.push_records}
            waiting: dict[int, tuple[str, ...]] = {}

            occ = pull_occ[e.update]

            def enqueue_pull(index: int, t: float) -> None:
                record = pulls[index]
                enqueue(
                    record.route,
                    occ[index],
                    lambda td, i=index: pull_arrived(flight, i, td),
                    t,
                    record.name,
                    {
                        "phase": record.phase,
                        "worker": record.worker,
                        "update": e.update,
                    },
                )

            def release_ready(now_t: float) -> None:
                for index in sorted(waiting):
                    if all(d in satisfied for d in waiting[index]):
                        del waiting[index]
                        enqueue_pull(index, now_t)

            flight["release_pulls"] = release_ready
            flight["pull_satisfied"] = satisfied
            for index, record in enumerate(pulls):
                if record.depends_on and not all(
                    d in satisfied for d in record.depends_on
                ):
                    waiting[index] = record.depends_on
                else:
                    enqueue_pull(index, now)

        def pull_arrived(flight: dict, index: int, now: float) -> None:
            record = flight["event"].pull_records[index]
            flight["pull_satisfied"].add(record.name)
            flight["pulls_left"] -= 1
            flight["release_pulls"](now)
            if flight["pulls_left"] == 0:
                update_done(flight, now)

        def update_done(flight: dict, now: float) -> None:
            e = flight["event"]
            w = e.worker
            done = now + codec_scale * e.pull_decompress_seconds
            if tracer is not None and done > now:
                tracer.span(
                    trace_group, f"worker{w}", f"pull-decompress:u{e.update}",
                    now, done,
                )
            ready[w] = done
            finished.append(
                SimulatedUpdate(
                    update=e.update,
                    worker=w,
                    start_seconds=flight["start"],
                    commit_seconds=flight["commit"],
                    done_seconds=done,
                    staleness=e.staleness,
                )
            )
            next_index[w] += 1
            if next_index[w] < len(by_worker[w]):
                if gate_open(w):
                    schedule(done, _P_START, lambda t, w=w: start_update(w, t))
                else:
                    blocked.add(w)

        for w in workers:
            if gate_open(w):
                schedule(0.0, _P_START, lambda t, w=w: start_update(w, t))
            else:  # pragma: no cover - first steps are never gated
                blocked.add(w)

        while heap:
            time, _, _, fn = heapq.heappop(heap)
            fn(time)

        if len(finished) != len(events):  # pragma: no cover - invariant
            raise RuntimeError(
                f"event replay finished {len(finished)}/{len(events)} updates; "
                "the recorded stream is not a consistent SSP schedule"
            )

        total = max(u.done_seconds for u in finished)
        return SimulatedExchange(
            updates=tuple(sorted(finished, key=lambda u: u.update)),
            total_seconds=total,
            compute_seconds=totals["compute"],
            codec_seconds=totals["codec"],
            comm_seconds=comm,
            overhead_seconds=overhead,
            serialized_seconds=totals["compute"] + totals["codec"] + comm + overhead,
            achieved_overlap=_hidden_fraction(compute_intervals, transfer_intervals),
            link_utilization={
                link_id: (link_busy.get(link_id, 0.0) / total if total else 0.0)
                for link_id in self.link_model.link_ids
            },
        )


def _hidden_fraction(
    compute_intervals: list[tuple[float, float]],
    transfer_intervals: list[tuple[float, float]],
) -> float:
    """Measured share of link-busy time that ran under some worker's
    compute — the event-driven overlap metric (no modelling, pure
    interval intersection on the simulated timeline)."""
    total = sum(end - start for start, end in transfer_intervals)
    if total <= 0:
        return 0.0
    merged: list[list[float]] = []
    for start, end in sorted(compute_intervals):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    # Both interval lists are sorted, so one pointer sweep suffices: a
    # compute interval ending before this transfer's start cannot overlap
    # any later transfer either. O((T + C) log T) instead of O(T * C).
    hidden = 0.0
    base = 0
    for start, end in sorted(transfer_intervals):
        while base < len(merged) and merged[base][1] <= start:
            base += 1
        for c_start, c_end in merged[base:]:
            if c_start >= end:
                break
            hidden += max(0.0, min(end, c_end) - max(start, c_start))
    return hidden / total
