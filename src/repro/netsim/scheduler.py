"""The discrete-event step scheduler.

One training step is replayed as a timeline:

1. **Backward** runs layer by layer in reverse registration order; the
   per-layer durations come from a measured
   :class:`~repro.nn.stats.BackwardTimeline`, rescaled so their sum equals
   the step's recorded compute seconds (times the hardware-substitution
   ``compute_scale``). A parameter's gradient exists when its layer's
   slice of the timeline completes.
2. **Push compression** is a serial pipeline per worker: each record costs
   its element-share of the step's measured push-compression seconds, and
   a fused bucket waits for its *last* member gradient before entering the
   pipeline.
3. **Transmission** is FIFO per link: a record starts when it is
   compressed *and* its route's link is free, and occupies the link for
   its transfer time plus its frames' protocol overhead.
4. The **server phase** (decompress + update + pull compress) starts once
   compute and every push have finished; **pulls** then traverse their
   links (fan-out copies included) and workers decompress.

With ``overlap=False`` the schedule is fully serialized — compute, then
all codec, then all transfers — which by construction reproduces the
analytic :class:`~repro.network.timing.StepTimeModel` closed form at
``overlap=0``: the equality is the simulator's calibration test, and the
delta between the two schedules is the honest measure of what per-layer
barriers buy.
"""

from __future__ import annotations

from dataclasses import replace

from repro.netsim.events import SimulatedRun, SimulatedStep, StepTransmissions, TransmissionRecord
from repro.netsim.links import LinkModel
from repro.network.timing import StepTimeModel
from repro.nn.stats import BackwardTimeline

__all__ = ["NetworkSimulator"]


class NetworkSimulator:
    """Replays recorded step transmissions against a link model.

    Parameters
    ----------
    timeline:
        Measured per-layer backward timeline of the trained model (its
        *fractions* are used; absolute durations are rescaled per step).
    link_model:
        The topology's links (see :mod:`repro.netsim.links`).
    time_model:
        Supplies the hardware-substitution scales and the per-frame
        protocol overhead. Its ``overlap`` constant is ignored — measuring
        that number is this class's purpose.
    overlap:
        ``True`` schedules per-layer transmissions while backward still
        runs; ``False`` serializes compute, codec, and transfer.
    serialized_baseline:
        When True (default), each overlapped ``simulate_step`` also runs
        the serialized schedule so ``SimulatedStep.serialized_seconds``
        and ``overlap_speedup`` are meaningful. Pass False to skip that
        second replay (halving simulation cost) when only the overlapped
        times are consumed; ``serialized_seconds`` then equals
        ``step_seconds``.
    """

    def __init__(
        self,
        timeline: BackwardTimeline,
        link_model: LinkModel,
        time_model: StepTimeModel | None = None,
        *,
        overlap: bool = True,
        serialized_baseline: bool = True,
    ):
        self.timeline = timeline
        self.link_model = link_model
        self.time_model = time_model or StepTimeModel()
        self.overlap = bool(overlap)
        self.serialized_baseline = bool(serialized_baseline)
        self._ready_fraction = timeline.ready_fraction()
        # Parameter -> label of the layer that produces its gradient.
        self._layer_of: dict[str, str] = {}
        for layer in timeline.layers:
            for name in layer.params:
                self._layer_of[name] = layer.label

    # -- public API --------------------------------------------------------

    def simulate_step(self, st: StepTransmissions) -> SimulatedStep:
        """Replay one step; see the module docstring for the event order."""
        overlapped = self._replay(st, overlap=self.overlap)
        if self.overlap and self.serialized_baseline:
            serialized = self._replay(st, overlap=False)
            return replace(overlapped, serialized_seconds=serialized.step_seconds)
        return overlapped

    def simulate_run(self, steps) -> SimulatedRun:
        """Replay every recorded step of a training run."""
        simulated = tuple(self.simulate_step(s) for s in steps)
        if not simulated:
            raise ValueError(
                "no recorded transmissions to simulate — was the engine "
                "built with record_transmissions=True?"
            )
        return SimulatedRun(simulated)

    # -- gradient readiness ------------------------------------------------

    def _grad_ready_seconds(self, record: TransmissionRecord, compute: float) -> float:
        """Time at which every gradient this record carries exists."""
        if not record.params:
            return compute
        # Parameters absent from the timeline (no owning leaf module) are
        # conservatively ready only when backward completes.
        return max(
            self._ready_fraction.get(name, 1.0) * compute for name in record.params
        )

    def _producing_layer(self, record: TransmissionRecord) -> str:
        if not record.params:
            return "backward:end"
        last = max(
            record.params, key=lambda name: self._ready_fraction.get(name, 1.0)
        )
        return f"backward:{self._layer_of.get(last, 'end')}"

    # -- the event replay --------------------------------------------------

    def _replay(self, st: StepTransmissions, *, overlap: bool) -> SimulatedStep:
        tm = self.time_model
        compute = tm.compute_scale * st.compute_seconds
        pmo = tm.per_message_overhead

        push_records = [r for r in st.records if r.phase in ("push", "collective")]
        pull_records = [r for r in st.records if r.phase == "pull"]

        # -- push compression: one serial pipeline per sending worker ------
        push_cost = tm.codec_scale * st.push_compress_seconds
        pipeline_elements: dict[int | None, int] = {}
        for record in push_records:
            pipeline_elements[record.worker] = (
                pipeline_elements.get(record.worker, 0) + record.elements
            )
        compressed_at: dict[int, float] = {}
        if overlap:
            pipeline_free: dict[int | None, float] = {}
            ordered = sorted(
                range(len(push_records)),
                key=lambda i: (
                    self._grad_ready_seconds(push_records[i], compute),
                    push_records[i].name,
                ),
            )
            for index in ordered:
                record = push_records[index]
                total = pipeline_elements[record.worker]
                cost = push_cost * record.elements / total if total else 0.0
                start = max(
                    self._grad_ready_seconds(record, compute),
                    pipeline_free.get(record.worker, 0.0),
                )
                compressed_at[index] = start + cost
                pipeline_free[record.worker] = compressed_at[index]
        else:
            for index in range(len(push_records)):
                compressed_at[index] = compute + push_cost

        # -- push transmission: FIFO per link ------------------------------
        link_free: dict[str, float] = {}
        link_busy: dict[str, float] = {}
        push_end = compute if not push_records else 0.0
        bottleneck = None  # (end, record, start_bound_by_link)
        for index in sorted(
            compressed_at, key=lambda i: (compressed_at[i], push_records[i].name)
        ):
            record = push_records[index]
            free = link_free.get(record.route, 0.0)
            start = max(compressed_at[index], free)
            duration = (
                self.link_model.transfer_seconds(record.route, record.total_bytes)
                + pmo * record.frames
            )
            end = start + duration
            link_free[record.route] = end
            link_busy[record.route] = link_busy.get(record.route, 0.0) + duration
            if end > push_end:
                push_end = end
                bottleneck = (record, start > compressed_at[index] + 1e-15)
        # The barrier cannot release before the slowest worker's backward;
        # when that floor binds, the step is compute-bound, not bound by
        # the last transfer.
        barrier_floor = compute + (push_cost if not overlap else 0.0)
        if barrier_floor > push_end:
            push_end = barrier_floor
            bottleneck = None

        # -- server phase and pulls ----------------------------------------
        server_cost = tm.codec_scale * (
            st.server_decompress_seconds + st.server_compress_seconds
        )
        pull_ready = push_end + server_cost
        phase_end = pull_ready
        last_pull: TransmissionRecord | None = None
        for record in sorted(pull_records, key=lambda r: r.name):
            free = max(pull_ready, link_free.get(record.route, 0.0))
            duration = (
                self.link_model.transfer_seconds(record.route, record.total_bytes)
                + pmo * record.frames
            )
            end = free + duration
            link_free[record.route] = end
            link_busy[record.route] = link_busy.get(record.route, 0.0) + duration
            if end > phase_end:
                phase_end = end
                last_pull = record
        pull_cost = tm.codec_scale * st.pull_decompress_seconds
        step_seconds = phase_end + pull_cost

        # -- bookkeeping ----------------------------------------------------
        comm = sum(
            self.link_model.transfer_seconds(r.route, r.total_bytes)
            for r in st.records
        )
        overhead = pmo * st.total_frames
        codec = push_cost + server_cost + pull_cost
        exposed = max(0.0, step_seconds - compute - codec - overhead)
        if compute > 0:
            achieved = min(1.0, max(0.0, (comm - exposed) / compute))
        else:
            achieved = 0.0
        utilization = {
            link_id: (link_busy.get(link_id, 0.0) / step_seconds if step_seconds else 0.0)
            for link_id in self.link_model.link_ids
        }
        return SimulatedStep(
            step=st.step,
            step_seconds=step_seconds,
            serialized_seconds=step_seconds,
            compute_seconds=compute,
            codec_seconds=codec,
            comm_seconds=comm,
            overhead_seconds=overhead,
            exposed_seconds=exposed,
            achieved_overlap=achieved if overlap else 0.0,
            link_utilization=utilization,
            critical_path=self._critical_path(
                bottleneck, last_pull, overlap, bool(pull_records)
            ),
        )

    def _critical_path(
        self,
        bottleneck: tuple[TransmissionRecord, bool] | None,
        last_pull: TransmissionRecord | None,
        overlap: bool,
        has_pulls: bool,
    ) -> tuple[str, ...]:
        """Label the chain of events that set this step's duration."""
        path: list[str] = []
        if bottleneck is None:
            path.append("backward:end")
        else:
            record, link_bound = bottleneck
            path.append(
                self._producing_layer(record) if overlap else "backward:end"
            )
            worker = f"@w{record.worker}" if record.worker is not None else ""
            path.append(f"compress:{record.name}{worker}")
            if link_bound:
                path.append(f"queue:{record.route}")
            path.append(f"xfer:{record.route}:{record.name}")
        if has_pulls:
            path.append("server-codec")
            if last_pull is not None:
                path.append(f"xfer:{last_pull.route}:{last_pull.name}")
            path.append("pull-decompress")
        return tuple(path)
