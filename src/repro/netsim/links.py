"""Link models: where each topology's bytes actually travel.

The analytic :class:`~repro.network.timing.StepTimeModel` charges every
byte to one shared server NIC, which is honest for the paper's evaluated
single-server setting and *dishonest* for the others: a sharded service
spreads load over independent server NICs, and a ring has no hotspot at
all. A :class:`LinkModel` names the individual links of a topology so the
scheduler can serialize transfers per link instead of globally.

Three shapes ship, one per exchange topology:

* :func:`single_server_links` — one ``"server"`` link carrying every push
  and every pull fan-out copy (the paper's bottleneck).
* :func:`sharded_links` — ``"shard0" .. "shard<K-1>"``, one independent
  NIC per parameter-server shard.
* :func:`ring_links` — one ``"ring"`` channel standing for the N
  point-to-point hop links, which operate in parallel and carry (nearly)
  identical volume in a ring collective; a record's ``wire_bytes`` is the
  *per-link* volume, so the channel's serialized time equals any single
  hop link's.
* :func:`hierarchical_links` — the first *composed* model: one fast
  ``"rack<r>"`` channel per rack (the rack's ring hop links, collapsed
  as for :func:`ring_links`) plus the slow cross-rack tier (one
  ``"cross:rack<r>"`` uplink per rack for a single upper server, or
  ``"cross:shard<k>"`` NICs when the upper tier is sharded). Intra- and
  cross-tier specs are independent — asymmetric bandwidth and RTT is
  the regime the paper targets.
"""

from __future__ import annotations

from repro.network.bandwidth import LinkSpec

__all__ = [
    "LinkModel",
    "single_server_links",
    "sharded_links",
    "ring_links",
    "hierarchical_links",
]


class LinkModel:
    """A named set of independent links, each with its own rate.

    Parameters
    ----------
    name:
        Topology label (diagnostics only).
    links:
        Mapping of link id → :class:`LinkSpec`. Every route a
        :class:`~repro.netsim.events.TransmissionRecord` names must be a
        key here; the scheduler rejects unknown routes with a clear error.
    """

    def __init__(self, name: str, links: dict[str, LinkSpec]):
        if not links:
            raise ValueError(f"link model {name!r} needs at least one link")
        for link_id, spec in links.items():
            if not isinstance(spec, LinkSpec):
                raise TypeError(
                    f"link {link_id!r} must be a LinkSpec, got {type(spec).__name__}"
                )
        self.name = name
        self.links = dict(links)

    @property
    def link_ids(self) -> tuple[str, ...]:
        return tuple(self.links)

    def spec(self, route: str) -> LinkSpec:
        try:
            return self.links[route]
        except KeyError:
            known = ", ".join(self.links)
            raise ValueError(
                f"record routed to unknown link {route!r}; "
                f"model {self.name!r} has links: {known}"
            ) from None

    def transfer_seconds(self, route: str, payload_bytes: float) -> float:
        """Serialized time for one payload on one link."""
        return self.spec(route).transfer_seconds(payload_bytes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LinkModel({self.name!r}, links={list(self.links)})"


def single_server_links(spec: LinkSpec) -> LinkModel:
    """The paper's shared bottleneck: one server NIC, all traffic."""
    return LinkModel("single", {"server": spec})


def sharded_links(spec: LinkSpec, num_shards: int) -> LinkModel:
    """One independent NIC per parameter-server shard."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return LinkModel(
        f"sharded(shards={num_shards})",
        {f"shard{index}": spec for index in range(num_shards)},
    )


def ring_links(spec: LinkSpec, num_workers: int) -> LinkModel:
    """The ring's hop links, collapsed to one lockstep channel.

    All ``num_workers`` links run concurrently and carry (within one
    chunk) the same volume per collective, so modelling them as a single
    channel whose records already hold per-link bytes yields the same
    completion times while keeping utilization reporting meaningful.
    """
    if num_workers < 2:
        raise ValueError(f"a ring needs >= 2 workers, got {num_workers}")
    return LinkModel(f"ring(n={num_workers})", {"ring": spec})


def hierarchical_links(
    intra: LinkSpec,
    cross: LinkSpec,
    *,
    racks: int,
    rack_size: int,
    upper: str = "single",
    num_shards: int = 2,
) -> LinkModel:
    """The two-tier fabric: per-rack ring channels feeding the core.

    Each rack's hop links collapse to one ``"rack<r>"`` channel (as in
    :func:`ring_links` — records carry per-link volume). The cross-rack
    tier mirrors the upper parameter service: one ``"cross:rack<r>"``
    uplink per rack for a single upper server (so an outage on one
    rack's uplink floors only that rack's route), or independent
    ``"cross:shard<k>"`` NICs when the upper tier is sharded.
    """
    if racks < 1:
        raise ValueError(f"racks must be >= 1, got {racks}")
    if rack_size < 2:
        raise ValueError(f"a rack ring needs >= 2 workers, got {rack_size}")
    links = {f"rack{index}": intra for index in range(racks)}
    if upper == "single":
        links.update({f"cross:rack{index}": cross for index in range(racks)})
    elif upper == "sharded":
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        links.update({f"cross:shard{index}": cross for index in range(num_shards)})
    else:
        raise ValueError(
            f"unknown upper tier {upper!r}; expected 'single' or 'sharded'"
        )
    return LinkModel(f"hier(racks={racks}, rack={rack_size})", links)
