"""Topology adapters: from an exchange plan to a link model.

The exchange layer stamps every recorded transmission with a *route*
(:meth:`repro.exchange.topology.ExchangeTopology.transmission_routes`);
this module builds the matching :class:`~repro.netsim.links.LinkModel`
from the topology's registry name, so the harness can simulate any
configuration it can train.
"""

from __future__ import annotations

from repro.netsim.links import (
    LinkModel,
    hierarchical_links,
    ring_links,
    sharded_links,
    single_server_links,
)
from repro.network.bandwidth import LinkSpec

__all__ = ["link_model_for"]


def link_model_for(
    topology: str,
    spec: LinkSpec,
    *,
    num_shards: int = 2,
    num_workers: int = 4,
    racks: int = 2,
    rack_size: int = 2,
    cross_bw_fraction: float = 0.1,
    cross_rtt_seconds: float = 0.0,
    hier_upper: str = "single",
) -> LinkModel:
    """Build the link model for one of the engine's exchange topologies.

    Parameters
    ----------
    topology:
        Registry name: ``"single"`` | ``"sharded"`` | ``"ring"`` |
        ``"hier"``.
    spec:
        Per-link bandwidth (all links of a flat topology share one rate,
        as in the paper's tc-emulated testbed). For the hierarchical
        topology this is the *intra-rack* rate; cross-rack uplinks run at
        ``cross_bw_fraction`` of it with ``cross_rtt_seconds`` of
        propagation delay — the scarce tier the paper targets.
    num_shards / num_workers:
        Shape knobs for the sharded and ring models (ignored otherwise).
    racks / rack_size / cross_bw_fraction / cross_rtt_seconds / hier_upper:
        Shape of the hierarchical fabric (ignored otherwise).
    """
    if topology == "single":
        return single_server_links(spec)
    if topology == "sharded":
        return sharded_links(spec, num_shards)
    if topology == "ring":
        return ring_links(spec, num_workers)
    if topology == "hier":
        if cross_bw_fraction <= 0:
            raise ValueError(
                f"cross_bw_fraction must be > 0, got {cross_bw_fraction!r}"
            )
        cross = LinkSpec(
            f"{spec.name}-cross",
            spec.bits_per_second * cross_bw_fraction,
            rtt_seconds=cross_rtt_seconds,
        )
        return hierarchical_links(
            spec,
            cross,
            racks=racks,
            rack_size=rack_size,
            upper=hier_upper,
            num_shards=num_shards,
        )
    raise ValueError(
        f"unknown topology {topology!r}; expected 'single', 'sharded', "
        "'ring', or 'hier'"
    )
