"""Topology adapters: from an exchange plan to a link model.

The exchange layer stamps every recorded transmission with a *route*
(:meth:`repro.exchange.topology.ExchangeTopology.transmission_routes`);
this module builds the matching :class:`~repro.netsim.links.LinkModel`
from the topology's registry name, so the harness can simulate any
configuration it can train.
"""

from __future__ import annotations

from repro.netsim.links import LinkModel, ring_links, sharded_links, single_server_links
from repro.network.bandwidth import LinkSpec

__all__ = ["link_model_for"]


def link_model_for(
    topology: str,
    spec: LinkSpec,
    *,
    num_shards: int = 2,
    num_workers: int = 4,
) -> LinkModel:
    """Build the link model for one of the engine's exchange topologies.

    Parameters
    ----------
    topology:
        Registry name: ``"single"`` | ``"sharded"`` | ``"ring"``.
    spec:
        Per-link bandwidth (all links of a topology share one rate, as in
        the paper's tc-emulated testbed).
    num_shards / num_workers:
        Shape knobs for the sharded and ring models (ignored otherwise).
    """
    if topology == "single":
        return single_server_links(spec)
    if topology == "sharded":
        return sharded_links(spec, num_shards)
    if topology == "ring":
        return ring_links(spec, num_workers)
    raise ValueError(
        f"unknown topology {topology!r}; expected 'single', 'sharded', or 'ring'"
    )
