"""Struct-of-arrays record batches for the vectorized simulator core.

The per-record Python event loop in :class:`~repro.netsim.scheduler.
NetworkSimulator` is honest but slow: a fleet-scale hierarchical step
carries thousands of :class:`~repro.netsim.events.TransmissionRecord`
objects, and replaying a 200-step recording at three link rates touches
every one of them dozens of times through dict lookups and attribute
reads. This module converts a step's record tuple *once* into a
:class:`RecordBatch` — flat NumPy arrays for bytes, frames, routes,
workers, names, and dependencies, plus the (link-independent) dependency
waves — and caches it on the ``StepTransmissions`` instance, so every
subsequent replay of the same recording (an incremental sweep over link
rates, an overlapped-plus-serialized pair, a replay-cache hit) pays only
vector arithmetic.

The batched replay in :func:`replay_vectorized` reproduces the scalar
scheduler's event order exactly:

* per-worker compression pipelines are per-segment prefix scans — the
  FIFO recurrence ``end_i = max(ready_i, end_{i-1}) + cost_i`` becomes
  ``maximum.accumulate`` over ``ready - prefix_cost``, run for every
  pipeline at once on a 2-D padded grid;
* per-link FIFOs apply the same scan per route within each dependency
  wave, with each link's free time carried across waves and phases;
* ties break exactly as in the scalar path: the same stable sorts on the
  same ``(ready, name)`` keys, and the same first-strict-maximum rule
  selects the bottleneck record.

Floating-point results can differ from the scalar path only through
re-association inside prefix sums — orders of magnitude below the 1e-9
closed-form parity tolerance the calibration tests enforce. The scalar
path stays available behind ``NetworkSimulator(..., vectorized=False)``
(or ``REPRO_SCALAR_SIM=1``) for differential testing.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.events import StepTransmissions, TransmissionRecord

__all__ = [
    "RecordBatch",
    "record_batch",
    "matches_signature",
    "phase_partition",
    "replay_run_vectorized",
    "share_signature",
    "step_signature",
    "structure_signature",
    "warm_extraction",
    "wire_occupancy_batch",
]

_BATCH_ATTR = "_repro_record_batch"
_SIG_ATTR = "_repro_structure_sig"
_NUM_ATTR = "_repro_numeric_rows"


def structure_signature(records):
    """Hashable projection of a record tuple's *structure*.

    Two steps with equal signatures share everything the batched replay
    precomputes — phase split, routes, per-worker pipelines, name table,
    and dependency waves — and differ only in numeric payloads (bytes,
    frames, elements) and the step's measured seconds. Recorded training
    runs emit the same record skeleton every step, so whole runs collapse
    to one signature and replay as a single batched pass (see
    :func:`replay_run_vectorized`).
    """
    return tuple(
        (r.name, r.phase, r.route, r.worker, r.params, r.depends_on)
        for r in records
    )


def step_signature(st: StepTransmissions):
    """:func:`structure_signature` of a step, cached on the instance.

    Sweeps replay one recording many times (per link config, per time
    model); the signature depends only on the immutable records tuple, so
    it is computed once per step object, like :func:`record_batch`.
    """
    sig = st.__dict__.get(_SIG_ATTR)
    if sig is None:
        sig = structure_signature(st.records)
        st.__dict__[_SIG_ATTR] = sig
    return sig


def share_signature(st: StepTransmissions, sig) -> None:
    """Re-point ``st``'s cached signature at an equal step's tuple.

    ``simulate_run`` compares adjacent steps' signatures; once two steps
    are known equal, sharing one tuple object turns every later
    comparison into an identity hit instead of an O(records) walk.
    """
    st.__dict__[_SIG_ATTR] = sig


def matches_signature(st: StepTransmissions, sig) -> bool:
    """Does ``st``'s record structure equal the (leader) signature ``sig``?

    The cold-replay fast path: group followers are checked field-by-field
    against the group leader's tuple — early-exiting on the first
    mismatch, allocating no per-step tuples — instead of materializing
    their own signatures first. A step that already carries a cached
    signature compares by identity, then by equality.
    """
    cached = st.__dict__.get(_SIG_ATTR)
    if cached is not None:
        return cached is sig or cached == sig
    records = st.records
    if len(records) != len(sig):
        return False
    for r, row in zip(records, sig):
        if (
            r.name != row[0]
            or r.phase != row[1]
            or r.route != row[2]
            or r.worker != row[3]
            or r.params != row[4]
            or r.depends_on != row[5]
        ):
            return False
    return True


def warm_extraction(steps) -> int:
    """Pre-extract every step's cached replay artifacts; returns the
    number of structure groups found.

    The first simulation of a freshly recorded training pays the full
    "cold" extraction cost — structure signatures, the group leaders'
    :class:`RecordBatch` conversions (phase split, name/route tables,
    dependency waves), and each step's :func:`numeric_rows` payload.
    Doing it once per recording, keyed by the replay cache's
    ``RecordingKey`` (see ``SweepReplayCache.prepare_extraction``),
    amortizes that cost across every timeline configuration the sweep or
    tuner replays the recording under.
    """
    steps = tuple(steps)
    groups = 0
    i, n = 0, len(steps)
    while i < n:
        sig = step_signature(steps[i])
        record_batch(steps[i])
        j = i + 1
        while j < n and matches_signature(steps[j], sig):
            share_signature(steps[j], sig)
            j += 1
        groups += 1
        i = j
    for st in steps:
        numeric_rows(st)
    return groups


def numeric_rows(st: StepTransmissions) -> np.ndarray:
    """The step's per-record numeric payload as a ``(3, n)`` float array
    (total bytes, frames, elements in record order), cached on the
    instance.

    This is the batched replay's only per-record Python touch; caching it
    means a re-simulated recording (sweep replay, overlap-plus-serialized
    pairs) never walks the record objects again.
    """
    num = st.__dict__.get(_NUM_ATTR)
    if num is None:
        rec = st.records
        num = np.array(
            [
                [r.total_bytes for r in rec],
                [r.frames for r in rec],
                [r.elements for r in rec],
            ],
            dtype=np.float64,
        )
        st.__dict__[_NUM_ATTR] = num
    return num


def phase_partition(records):
    """Split a record tuple into (push+collective, pull) in one pass.

    The scalar scheduler and the per-tier closed form both consume this
    partition; doing it once per step (instead of one list comprehension
    per phase per call) removes the repeated O(n) re-filtering from the
    hierarchical hot path.
    """
    pushes, pulls = [], []
    for record in records:
        (pulls if record.phase == "pull" else pushes).append(record)
    return pushes, pulls


class _Wave:
    """One dependency tier of a phase, with its order-independent pieces
    precomputed: the records' indices (ascending — the scalar path's
    iteration order), which of them carry dependencies, and the flattened
    dependency name codes ready for a ``maximum.reduceat``."""

    __slots__ = ("indices", "dep_idx", "dep_flat", "dep_off")

    def __init__(self, indices: np.ndarray, phase: "_PhaseBatch"):
        self.indices = indices
        dep_idx: list[int] = []
        dep_flat: list[int] = []
        dep_off: list[int] = []
        for pos, i in enumerate(indices):
            lo, hi = phase.dep_offsets[i], phase.dep_offsets[i + 1]
            if hi > lo:
                dep_idx.append(pos)
                dep_off.append(len(dep_flat))
                dep_flat.extend(phase.dep_codes[lo:hi])
        self.dep_idx = np.array(dep_idx, dtype=np.intp)
        self.dep_flat = np.array(dep_flat, dtype=np.intp)
        self.dep_off = np.array(dep_off, dtype=np.intp)

    def dep_ends(self, end_by_name: np.ndarray) -> np.ndarray:
        """Max transfer-end over each record's dependencies (0 if none),
        aligned with ``self.indices``."""
        out = np.zeros(self.indices.shape[0])
        if self.dep_idx.size:
            out[self.dep_idx] = np.maximum.reduceat(
                end_by_name[self.dep_flat], self.dep_off
            )
        return out

    def dep_ends_multi(self, end_by_name: np.ndarray) -> np.ndarray:
        """Row-batched :meth:`dep_ends`: ``end_by_name`` is ``(S, names)``
        (one row per step), the result ``(S, wave)``."""
        out = np.zeros((end_by_name.shape[0], self.indices.shape[0]))
        if self.dep_idx.size:
            out[:, self.dep_idx] = np.maximum.reduceat(
                end_by_name[:, self.dep_flat], self.dep_off, axis=1
            )
        return out


class _PhaseBatch:
    """Arrays for one phase's records (pushes+collectives, or pulls)."""

    __slots__ = (
        "records",
        "n",
        "total_bytes",
        "frames",
        "elements",
        "route_code",
        "name_code",
        "worker_code",
        "num_workers",
        "has_deps",
        "dep_codes",
        "dep_offsets",
        "waves",
    )

    def __init__(
        self,
        records: list[TransmissionRecord],
        name_code_of: dict[str, int],
        route_code_of: dict[str, int],
        external_names: frozenset[str],
    ):
        self.records = records
        n = len(records)
        self.n = n
        self.total_bytes = np.array(
            [r.total_bytes for r in records], dtype=np.float64
        )
        self.frames = np.array([r.frames for r in records], dtype=np.float64)
        self.elements = np.array([r.elements for r in records], dtype=np.float64)
        for r in records:
            if r.route not in route_code_of:
                route_code_of[r.route] = len(route_code_of)
        self.route_code = np.array(
            [route_code_of[r.route] for r in records], dtype=np.intp
        )
        self.name_code = np.array(
            [name_code_of[r.name] for r in records], dtype=np.intp
        )
        # Compression pipelines are keyed by sending worker; the ``None``
        # shared pipeline gets its own dense code.
        worker_ids: dict[object, int] = {}
        codes = []
        for r in records:
            codes.append(worker_ids.setdefault(r.worker, len(worker_ids)))
        self.worker_code = np.array(codes, dtype=np.intp)
        self.num_workers = len(worker_ids)

        flat_deps: list[int] = []
        offsets = [0]
        for r in records:
            flat_deps.extend(name_code_of[d] for d in r.depends_on)
            offsets.append(len(flat_deps))
        self.dep_codes = np.array(flat_deps, dtype=np.intp)
        self.dep_offsets = np.array(offsets, dtype=np.intp)
        self.has_deps = self.dep_offsets[1:] > self.dep_offsets[:-1]

        if not flat_deps:
            # Fast path: no tier coupling means a single wave and no graph
            # traversal at all (the flat topologies).
            raw = [np.arange(n, dtype=np.intp)] if n else []
        else:
            from repro.netsim.scheduler import dependency_waves

            raw = [
                np.array(wave, dtype=np.intp)
                for wave in dependency_waves(records, external_names)
            ]
        self.waves = tuple(_Wave(w, self) for w in raw)


class RecordBatch:
    """Link-model-independent struct-of-arrays view of one step's records.

    Built once per :class:`~repro.netsim.events.StepTransmissions` (see
    :func:`record_batch`) and shared by every simulator replaying it: the
    arrays depend only on the recording, while per-link quantities (wire
    occupancies) are computed per replay from the cached route codes.
    """

    __slots__ = (
        "records",
        "route_names",
        "num_names",
        "push",
        "pull",
        "push_pos",
        "pull_pos",
        "_frac_cache",
    )

    def __init__(self, records: tuple[TransmissionRecord, ...]):
        self.records = records
        pushes, pulls = phase_partition(records)
        # Positions of each phase's records in the original tuple, so the
        # run-batched replay can slice per-step numeric payloads extracted
        # in record order into the phase arrays' layout.
        self.push_pos = np.array(
            [i for i, r in enumerate(records) if r.phase != "pull"],
            dtype=np.intp,
        )
        self.pull_pos = np.array(
            [i for i, r in enumerate(records) if r.phase == "pull"],
            dtype=np.intp,
        )
        # One global name table spanning both phases: pull dependencies may
        # name push-phase records, and transfer-end times are keyed by
        # name. Codes are assigned in *sorted* name order, so the codes
        # double as lexicographic ranks and integer comparisons reproduce
        # the scalar path's string tie-breaking exactly.
        names = sorted(
            {r.name for r in records} | {d for r in records for d in r.depends_on}
        )
        name_code_of = {name: code for code, name in enumerate(names)}
        self.num_names = len(names)
        route_code_of: dict[str, int] = {}
        push_names = frozenset(r.name for r in pushes)
        self.push = _PhaseBatch(pushes, name_code_of, route_code_of, frozenset())
        self.pull = _PhaseBatch(pulls, name_code_of, route_code_of, push_names)
        self.route_names = tuple(route_code_of)
        #: Per-timeline cache of each push record's gradient-ready compute
        #: fraction (max over the parameters the record carries). Keyed by
        #: the (hashable, frozen) BackwardTimeline.
        self._frac_cache: dict[object, np.ndarray] = {}

    def route_arrays(self, link_model):
        """(bits_per_second, rtt_seconds) per route code, for one model."""
        specs = [link_model.spec(r) for r in self.route_names]
        rates = np.array([s.bits_per_second for s in specs], dtype=np.float64)
        rtts = np.array([s.rtt_seconds for s in specs], dtype=np.float64)
        return rates, rtts

    def max_ready_fraction(self, timeline, ready_fraction: dict[str, float]):
        """Each push record's gradient-ready compute fraction (cached).

        Records carrying no parameters are conservatively ready at 1.0
        (when backward completes), matching the scalar path.
        """
        cached = self._frac_cache.get(timeline)
        if cached is None:
            cached = np.array(
                [
                    max(ready_fraction.get(name, 1.0) for name in r.params)
                    if r.params
                    else 1.0
                    for r in self.push.records
                ],
                dtype=np.float64,
            )
            self._frac_cache[timeline] = cached
        return cached


def record_batch(st: StepTransmissions) -> RecordBatch:
    """The step's cached :class:`RecordBatch` (built on first use).

    ``StepTransmissions`` is a frozen dataclass without slots, so the
    batch rides the instance ``__dict__``: recordings are replayed many
    times (link sweeps, overlapped-plus-serialized pairs, replay-cache
    hits) and the SoA conversion plus dependency waves dominate the
    per-step setup cost.
    """
    batch = st.__dict__.get(_BATCH_ATTR)
    if batch is None:
        batch = RecordBatch(st.records)
        st.__dict__[_BATCH_ATTR] = batch
    return batch


def wire_occupancy_batch(records, link_model, time_model):
    """Per-record wire occupancies plus comm/overhead totals, batched.

    Returns ``(occupancy, comm, overhead)``: the array of per-record link
    occupancies (transfer + per-frame protocol overhead + per-frame link
    RTT — elementwise the same IEEE operations as
    :func:`~repro.netsim.scheduler.wire_occupancy_seconds`), the summed
    raw transfer seconds, and the summed per-frame overhead seconds. The
    event simulator precomputes this once per update stream instead of
    resolving link specs record by record inside the event loop.
    """
    route_code_of: dict[str, int] = {}
    codes = []
    tbytes = []
    frames = []
    for r in records:
        codes.append(route_code_of.setdefault(r.route, len(route_code_of)))
        tbytes.append(r.total_bytes)
        frames.append(r.frames)
    if not codes:
        return np.zeros(0), 0.0, 0.0
    specs = [link_model.spec(r) for r in route_code_of]
    rates = np.array([s.bits_per_second for s in specs])
    rtts = np.array([s.rtt_seconds for s in specs])
    rc = np.array(codes, dtype=np.intp)
    transfer = 8.0 * np.array(tbytes, dtype=np.float64) / rates[rc]
    per_frame = (time_model.per_message_overhead + rtts[rc]) * np.array(
        frames, dtype=np.float64
    )
    return (
        transfer + per_frame,
        float(np.sum(transfer)),
        float(np.sum(per_frame)),
    )


def _segmented_scan(ready, costs, seg_ids, num_segments, seg_init):
    """FIFO scan ``end_i = max(ready_i, end_{i-1}) + cost_i`` per segment,
    with ``end_{-1} = seg_init[segment]``.

    ``seg_ids`` must be sorted ascending (records already grouped by
    segment); within a segment, array order is service order. Runs as a
    depth-wise sweep: iteration ``k`` serves every segment's ``k``-th
    queued record at once, so the loop length is the deepest queue, not
    the record count — and each end time is produced by *exactly* the
    scalar loop's IEEE operations (one ``max``, one add, in the same
    order). That exactness matters beyond aesthetics: per-record codec
    costs are element-shares of one budget, so distinct pipelines finish
    in exact real-arithmetic ties, and a prefix-sum formulation (which
    re-associates the additions) can land an ulp away and flip the next
    wave's (ready, name) service order — a discrete schedule change, not
    a rounding blur.

    Returns ``(ends, starts, seg_last)``: per-record end and start times
    plus each segment's final end (``seg_init`` where a segment is empty).
    """
    n = ready.shape[0]
    counts = np.bincount(seg_ids, minlength=num_segments)
    width = int(counts.max()) if n else 0
    seg_last = seg_init.copy()

    if width <= 1:
        # Every link serves at most one record this wave: no queueing.
        starts = np.maximum(ready, seg_init[seg_ids])
        ends = starts + costs
        seg_last[seg_ids] = ends
        return ends, starts, seg_last

    seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    col = np.arange(n) - seg_starts[seg_ids]
    # Bucket record positions by queue depth: elements at depth k across
    # all segments are independent and serve together.
    by_depth = np.argsort(col, kind="stable")
    bounds = np.searchsorted(col[by_depth], np.arange(width + 1))
    starts = np.empty(n)
    ends = np.empty(n)
    prev = seg_last
    for k in range(width):
        pk = by_depth[bounds[k] : bounds[k + 1]]
        sk = seg_ids[pk]
        start = np.maximum(ready[pk], prev[sk])
        end = start + costs[pk]
        starts[pk] = start
        ends[pk] = end
        prev[sk] = end
    return ends, starts, seg_last


def _segmented_scan_steps(ready, costs, seg_ids, num_segments, seg_init):
    """Row-batched :func:`_segmented_scan`: one independent scan per row.

    ``ready`` and ``costs`` are ``(S, m)`` (one row per step), ``seg_init``
    is ``(S, num_segments)``, and ``seg_ids`` — sorted ascending, service
    order within a segment — is *shared across rows*: every step of a
    batched group presents the same segment layout, only the numbers
    differ. The depth-wise sweep performs the per-step scan's exact IEEE
    operations on every row, so a batched replay is bit-identical to
    replaying each step alone (and to the scalar reference loop).

    Returns ``(ends, starts, seg_last)`` shaped like the inputs.
    """
    S, m = ready.shape
    seg_last = seg_init.copy()
    if m == 0:
        return ready, ready, seg_last
    counts = np.bincount(seg_ids, minlength=num_segments)
    width = int(counts.max())

    if width <= 1:
        starts = np.maximum(ready, seg_init[:, seg_ids])
        ends = starts + costs
        seg_last[:, seg_ids] = ends
        return ends, starts, seg_last

    seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    col = np.arange(m) - seg_starts[seg_ids]
    by_depth = np.argsort(col, kind="stable")
    bounds = np.searchsorted(col[by_depth], np.arange(width + 1))
    starts = np.empty((S, m))
    ends = np.empty((S, m))
    prev = seg_last
    for k in range(width):
        pk = by_depth[bounds[k] : bounds[k + 1]]
        sk = seg_ids[pk]
        start = np.maximum(ready[:, pk], prev[:, sk])
        end = start + costs[:, pk]
        starts[:, pk] = start
        ends[:, pk] = end
        prev[:, sk] = end
    return ends, starts, seg_last


def _first_strict_max(values: np.ndarray, floor: float):
    """Index of the first value (in array order) attaining the maximum,
    if that maximum strictly exceeds ``floor`` — the scalar loop's running
    ``end > best`` bottleneck rule restricted to one wave."""
    if values.size == 0:
        return None
    peak = values.max()
    if peak <= floor:
        return None
    return int(np.flatnonzero(values == peak)[0])


def compressed_at_vectorized(
    batch: RecordBatch,
    compute: float,
    push_cost: float,
    max_frac: np.ndarray,
    *,
    overlap: bool,
    priority: str = "registration",
) -> np.ndarray:
    """Vectorized per-worker compression pipeline (push phase).

    Mirrors ``NetworkSimulator._push_compressed_at``: records enter their
    sending worker's serial pipeline in (gradient-ready, name) order —
    (gradient-ready, elements, name) under the "smallest" priority — and
    cost their element-share of the step's push-compression budget.
    """
    push = batch.push
    n = push.n
    if not overlap:
        return np.full(n, compute + push_cost)
    grad_ready = max_frac * compute
    if priority == "smallest":
        order = np.lexsort((push.name_code, push.elements, grad_ready))
    else:
        order = np.lexsort((push.name_code, grad_ready))
    totals = np.bincount(
        push.worker_code, weights=push.elements, minlength=push.num_workers
    )
    per_record_total = totals[push.worker_code]
    costs = np.where(
        per_record_total > 0,
        (push_cost * push.elements)
        / np.where(per_record_total > 0, per_record_total, 1.0),
        0.0,
    )
    # Group the (ready, name)-sorted sequence by worker — stable, so each
    # pipeline keeps its service order — then scan all pipelines at once.
    workers_sorted = push.worker_code[order]
    group = np.argsort(workers_sorted, kind="stable")
    idx = order[group]
    ends, _, _ = _segmented_scan(
        grad_ready[idx],
        costs[idx],
        workers_sorted[group],
        push.num_workers,
        np.zeros(push.num_workers),
    )
    compressed = np.empty(n)
    compressed[idx] = ends
    return compressed


def replay_vectorized(
    sim, st: StepTransmissions, *, overlap: bool, trace: bool = False
):
    """Vectorized counterpart of ``NetworkSimulator._replay_scalar``.

    ``sim`` supplies the timeline, link model, and time model; the event
    order is documented in :mod:`repro.netsim.scheduler`. Returns the same
    :class:`~repro.netsim.events.SimulatedStep`. With ``trace`` and a
    ``sim.tracer`` attached, the scan results scatter back into per-record
    transfer spans — the same spans the scalar path emits, paid only when
    tracing.
    """
    from repro.netsim.events import SimulatedStep

    tracer = sim.tracer if trace else None
    trace_group = sim.trace_group
    off = sim.trace_offset
    tm = sim.time_model
    batch = record_batch(st)
    push, pull = batch.push, batch.pull
    compute = tm.compute_scale * st.compute_seconds
    push_cost = tm.codec_scale * st.push_compress_seconds

    rates, rtts = batch.route_arrays(sim.link_model)
    per_frame = tm.per_message_overhead + rtts
    occ_push = (
        8.0 * push.total_bytes / rates[push.route_code]
        + per_frame[push.route_code] * push.frames
    )
    occ_pull = (
        8.0 * pull.total_bytes / rates[pull.route_code]
        + per_frame[pull.route_code] * pull.frames
    )
    max_frac = batch.max_ready_fraction(sim.timeline, sim._ready_fraction)
    priority = sim.priority
    compressed_at = compressed_at_vectorized(
        batch, compute, push_cost, max_frac, overlap=overlap, priority=priority
    )
    if tracer is not None:
        from repro.netsim.scheduler import _trace_push_codec

        _trace_push_codec(
            tracer, trace_group, off, st.step,
            push.records, compressed_at, compute, push_cost,
            overlap=overlap,
        )

    num_routes = len(batch.route_names)
    link_free = np.zeros(num_routes)
    if st.link_down:
        # Injected-fault outage floors seed the per-route free times
        # (routes carrying no records this step are timing no-ops, but
        # their windows still trace). Same max as the scalar dict seed.
        route_index = {route: i for i, route in enumerate(batch.route_names)}
        for route, down in st.link_down:
            i = route_index.get(route)
            if i is not None:
                link_free[i] = max(link_free[i], down)
            if tracer is not None and down > 0.0:
                tracer.span(
                    trace_group,
                    f"outage:{route}",
                    "link-down",
                    off,
                    off + down,
                    step=st.step,
                )
    link_busy = np.zeros(num_routes)
    end_by_name = np.zeros(batch.num_names)

    # -- push transmission: FIFO per link, in dependency tiers -------------
    push_end = compute if push.n == 0 else 0.0
    bottleneck = None  # (record, start_bound_by_link)
    tier_floor = 0.0
    for wave in push.waves:
        w0 = wave.indices
        if overlap:
            dep_end = wave.dep_ends(end_by_name)
        else:
            # Serialized schedules are fully staged: a tier starts only
            # after the whole previous tier has landed — what makes the
            # schedule equal the analytic per-tier sum.
            dep_end = np.where(push.has_deps[w0], tier_floor, 0.0)
        ready = np.maximum(compressed_at[w0], dep_end)
        if priority == "smallest":
            order = np.lexsort((push.name_code[w0], push.elements[w0], ready))
        else:
            order = np.lexsort((push.name_code[w0], ready))
        ready_sorted = ready[order]
        w = w0[order]
        group = np.argsort(push.route_code[w], kind="stable")
        w = w[group]
        rc = push.route_code[w]
        ends, starts, link_free = _segmented_scan(
            ready_sorted[group], occ_push[w], rc, num_routes, link_free
        )
        np.add.at(link_busy, rc, occ_push[w])
        if tracer is not None:
            for k in range(w.shape[0]):
                record = push.records[int(w[k])]
                tracer.span(
                    trace_group,
                    f"link:{record.route}",
                    record.name,
                    off + float(starts[k]),
                    off + float(ends[k]),
                    phase=record.phase,
                    step=st.step,
                    worker=record.worker,
                )
        np.maximum.at(end_by_name, push.name_code[w], ends)
        # Scatter back to processing ((ready, name)-sorted) order so the
        # first-strict-max bottleneck rule sees the scalar path's ties.
        proc_end = np.empty_like(ends)
        proc_end[group] = ends
        hit = _first_strict_max(proc_end, push_end)
        if hit is not None:
            push_end = float(proc_end[hit])
            proc_start = np.empty_like(starts)
            proc_start[group] = starts
            bound = bool(proc_start[hit] > ready_sorted[hit] + 1e-15)
            bottleneck = (push.records[int(w0[order[hit]])], bound)
        tier_floor = max(tier_floor, float(ends.max()))
    # The barrier cannot release before the slowest worker's backward;
    # when that floor binds, the step is compute-bound.
    barrier_floor = compute + (push_cost if not overlap else 0.0)
    if barrier_floor > push_end:
        push_end = barrier_floor
        bottleneck = None

    # -- server phase and pulls --------------------------------------------
    server_cost = tm.codec_scale * (
        st.server_decompress_seconds + st.server_compress_seconds
    )
    pull_ready = push_end + server_cost
    phase_end = pull_ready
    last_pull: TransmissionRecord | None = None
    tier_floor = pull_ready
    for wave in pull.waves:
        w0 = wave.indices
        if overlap:
            dep_end = wave.dep_ends(end_by_name)
        else:
            dep_end = np.where(pull.has_deps[w0], tier_floor, 0.0)
        base = np.maximum(pull_ready, dep_end)
        if priority == "smallest":
            order = np.lexsort((pull.name_code[w0], pull.elements[w0]))
        else:
            order = np.argsort(pull.name_code[w0], kind="stable")
        w = w0[order]
        group = np.argsort(pull.route_code[w], kind="stable")
        w = w[group]
        rc = pull.route_code[w]
        ends, starts, link_free = _segmented_scan(
            base[order][group], occ_pull[w], rc, num_routes, link_free
        )
        np.add.at(link_busy, rc, occ_pull[w])
        if tracer is not None:
            for k in range(w.shape[0]):
                record = pull.records[int(w[k])]
                tracer.span(
                    trace_group,
                    f"link:{record.route}",
                    record.name,
                    off + float(starts[k]),
                    off + float(ends[k]),
                    phase=record.phase,
                    step=st.step,
                    worker=record.worker,
                )
        np.maximum.at(end_by_name, pull.name_code[w], ends)
        proc_end = np.empty_like(ends)
        proc_end[group] = ends
        hit = _first_strict_max(proc_end, phase_end)
        if hit is not None:
            phase_end = float(proc_end[hit])
            last_pull = pull.records[int(w0[order[hit]])]
        tier_floor = max(tier_floor, float(ends.max()))
    pull_cost = tm.codec_scale * st.pull_decompress_seconds
    step_seconds = phase_end + pull_cost
    if tracer is not None:
        tracer.span(
            trace_group, "compute", "backward", off, off + compute, step=st.step
        )
        if server_cost > 0:
            tracer.span(
                trace_group, "server", "server-codec",
                off + push_end, off + pull_ready, step=st.step,
            )
        if pull_cost > 0:
            tracer.span(
                trace_group, "compute", "pull-decompress",
                off + phase_end, off + step_seconds, step=st.step,
            )

    # -- bookkeeping --------------------------------------------------------
    comm = overhead = 0.0
    for phase in (push, pull):
        if phase.n:
            rc = phase.route_code
            comm += float(np.sum(8.0 * phase.total_bytes / rates[rc]))
            overhead += float(np.sum(per_frame[rc] * phase.frames))
    codec = push_cost + server_cost + pull_cost
    exposed = max(0.0, step_seconds - compute - codec - overhead)
    if compute > 0:
        achieved = min(1.0, max(0.0, (comm - exposed) / compute))
    else:
        achieved = 0.0
    busy_of = dict(zip(batch.route_names, link_busy.tolist()))
    utilization = {
        link_id: (busy_of.get(link_id, 0.0) / step_seconds if step_seconds else 0.0)
        for link_id in sim.link_model.link_ids
    }
    return SimulatedStep(
        step=st.step,
        step_seconds=step_seconds,
        serialized_seconds=step_seconds,
        compute_seconds=compute,
        codec_seconds=codec,
        comm_seconds=comm,
        overhead_seconds=overhead,
        exposed_seconds=exposed,
        achieved_overlap=achieved if overlap else 0.0,
        link_utilization=utilization,
        critical_path=sim._critical_path(bottleneck, last_pull, overlap, pull.n > 0),
    )


def replay_run_vectorized(sim, steps, *, overlap):
    """Replay a structurally identical step group as one batched pass.

    ``steps`` must share one :func:`structure_signature` (the caller —
    ``NetworkSimulator.simulate_run`` — groups them). BSP steps are
    independent schedules, so the batch adds a leading step axis to every
    array of :func:`replay_vectorized` and runs each wave's FIFO scans for
    all steps at once: the structure (waves, sorts' segment layouts, name
    and route tables) is computed once per group instead of once per step,
    and the per-step NumPy fixed costs amortize across the group.

    The arithmetic is elementwise identical to :func:`replay_vectorized`
    (same gathers, same scans, same tie-breaking sorts), so the batched
    results are bit-identical to replaying each step alone. Returns a list
    of ``SimulatedStep``, or ``None`` when the group cannot share one
    service order (a step with non-positive compute seconds under overlap)
    and the caller must fall back to per-step replay.
    """
    from repro.netsim.events import SimulatedStep

    if sim.priority != "registration":
        # Non-registration priorities sort by per-step element counts, so
        # the group cannot share one service order across its step axis.
        return None

    tm = sim.time_model
    batch = record_batch(steps[0])
    push, pull = batch.push, batch.pull
    S = len(steps)
    n_all = len(steps[0].records)

    compute = tm.compute_scale * np.array([st.compute_seconds for st in steps])
    # The per-worker compression pipeline sorts by (ready-fraction x
    # compute, name); one shared order needs compute > 0 everywhere.
    if overlap and push.n and not np.all(compute > 0.0):
        return None
    push_cost = tm.codec_scale * np.array(
        [st.push_compress_seconds for st in steps]
    )
    server_cost = tm.codec_scale * np.array(
        [st.server_decompress_seconds + st.server_compress_seconds for st in steps]
    )
    pull_cost = tm.codec_scale * np.array(
        [st.pull_decompress_seconds for st in steps]
    )

    # Per-step numeric payloads, extracted in record order (cached per
    # step object) and sliced into each phase's layout.
    num = np.stack([numeric_rows(st) for st in steps])
    tb = num[:, 0, :]
    fr = num[:, 1, :]
    el = num[:, 2, :]
    B_push = tb[:, batch.push_pos]
    F_push = fr[:, batch.push_pos]
    E_push = el[:, batch.push_pos]
    B_pull = tb[:, batch.pull_pos]
    F_pull = fr[:, batch.pull_pos]

    rates, rtts = batch.route_arrays(sim.link_model)
    per_frame = tm.per_message_overhead + rtts
    rc_push = push.route_code
    rc_pull = pull.route_code
    occ_push = 8.0 * B_push / rates[rc_push] + per_frame[rc_push] * F_push
    occ_pull = 8.0 * B_pull / rates[rc_pull] + per_frame[rc_pull] * F_pull

    rows = np.arange(S)[:, None]

    # -- push compression pipelines (all steps at once) --------------------
    if push.n:
        if overlap:
            max_frac = batch.max_ready_fraction(sim.timeline, sim._ready_fraction)
            grad_ready = compute[:, None] * max_frac[None, :]
            # compute > 0, so ranking by frac x compute == ranking by frac:
            # the (ready, name) service order is shared by every step.
            order = np.lexsort((push.name_code, max_frac))
            # Per-worker element totals: segment-sum over a structural
            # worker sort. The stable sort keeps each worker's elements in
            # record order, so the additions associate exactly like the
            # per-step bincount.
            wsort = np.argsort(push.worker_code, kind="stable")
            wc_sorted = push.worker_code[wsort]
            present = np.unique(wc_sorted)
            offs = np.searchsorted(wc_sorted, present)
            totals = np.zeros((S, push.num_workers))
            totals[:, present] = np.add.reduceat(E_push[:, wsort], offs, axis=1)
            per_total = totals[:, push.worker_code]
            costs = np.where(
                per_total > 0,
                (push_cost[:, None] * E_push)
                / np.where(per_total > 0, per_total, 1.0),
                0.0,
            )
            workers_sorted = push.worker_code[order]
            group = np.argsort(workers_sorted, kind="stable")
            idx = order[group]
            ends, _, _ = _segmented_scan_steps(
                grad_ready[:, idx],
                costs[:, idx],
                workers_sorted[group],
                push.num_workers,
                np.zeros((S, push.num_workers)),
            )
            compressed = np.empty((S, push.n))
            compressed[:, idx] = ends
        else:
            compressed = np.broadcast_to(
                (compute + push_cost)[:, None], (S, push.n)
            )

    num_routes = len(batch.route_names)
    link_free = np.zeros((S, num_routes))
    if any(st.link_down for st in steps):
        # Per-row outage floors: the segmented scans take per-row initial
        # link-free times, so steps with different injected outages batch
        # together bit-exactly (service order is floor-independent).
        route_index = {route: i for i, route in enumerate(batch.route_names)}
        for s, st in enumerate(steps):
            for route, down in st.link_down:
                i = route_index.get(route)
                if i is not None:
                    link_free[s, i] = max(link_free[s, i], down)
    link_busy = np.zeros((S, num_routes))
    end_by_name = np.zeros((S, batch.num_names))

    # -- push transmission: FIFO per link, in dependency tiers -------------
    push_end = compute.copy() if push.n == 0 else np.zeros(S)
    bneck_idx = np.full(S, -1, dtype=np.intp)
    bneck_bound = np.zeros(S, dtype=bool)
    tier_floor = np.zeros(S)
    for wave in push.waves:
        w0 = wave.indices
        m = w0.shape[0]
        if overlap:
            dep_end = wave.dep_ends_multi(end_by_name)
        else:
            dep_end = np.where(push.has_deps[w0][None, :], tier_floor[:, None], 0.0)
        ready = np.maximum(compressed[:, w0], dep_end)
        # (ready, name) service order is per-step data: pre-permute the
        # wave by name once, then one stable row-argsort on ready realizes
        # the lexsort for every step in a single C call.
        name_order = np.argsort(push.name_code[w0], kind="stable")
        w_n = w0[name_order]
        rc_n = push.route_code[w_n]
        nc_n = push.name_code[w_n]
        ready_n = ready[:, name_order]
        order2 = np.argsort(ready_n, axis=1, kind="stable")
        group2 = np.argsort(rc_n[order2], axis=1, kind="stable")
        pos = np.take_along_axis(order2, group2, axis=1)
        seg_row = np.sort(rc_n)  # shared: per-route counts are structural
        ready_scan = np.take_along_axis(ready_n, pos, axis=1)
        occ_scan = np.take_along_axis(occ_push[:, w_n], pos, axis=1)
        ends, starts, link_free = _segmented_scan_steps(
            ready_scan, occ_scan, seg_row, num_routes, link_free
        )
        np.add.at(link_busy, (rows, seg_row[None, :]), occ_scan)
        idx_n = nc_n[pos]
        if np.unique(nc_n).size == nc_n.size:
            # Unique names per wave (the recorded invariant): a gather +
            # maximum + scatter replaces the elementwise ufunc.at loop.
            # max is exact, so the result is identical either way.
            end_by_name[rows, idx_n] = np.maximum(end_by_name[rows, idx_n], ends)
        else:
            np.maximum.at(end_by_name, (rows, idx_n), ends)
        proc_end = np.empty((S, m))
        np.put_along_axis(proc_end, group2, ends, axis=1)
        peak = proc_end.max(axis=1)
        better = peak > push_end
        if np.any(better):
            hit_rows = np.flatnonzero(better)
            h = np.argmax(proc_end[hit_rows] == peak[hit_rows, None], axis=1)
            proc_start = np.empty((S, m))
            np.put_along_axis(proc_start, group2, starts, axis=1)
            ready_proc = np.take_along_axis(ready_n, order2, axis=1)
            push_end[hit_rows] = peak[hit_rows]
            bneck_bound[hit_rows] = (
                proc_start[hit_rows, h] > ready_proc[hit_rows, h] + 1e-15
            )
            bneck_idx[hit_rows] = w_n[order2[hit_rows, h]]
        tier_floor = np.maximum(tier_floor, ends.max(axis=1))
    barrier_floor = compute if overlap else compute + push_cost
    capped = barrier_floor > push_end
    push_end = np.where(capped, barrier_floor, push_end)
    bneck_idx[capped] = -1

    # -- server phase and pulls --------------------------------------------
    pull_ready = push_end + server_cost
    phase_end = pull_ready.copy()
    last_idx = np.full(S, -1, dtype=np.intp)
    tier_floor = pull_ready.copy()
    for wave in pull.waves:
        w0 = wave.indices
        m = w0.shape[0]
        if overlap:
            dep_end = wave.dep_ends_multi(end_by_name)
        else:
            dep_end = np.where(pull.has_deps[w0][None, :], tier_floor[:, None], 0.0)
        base = np.maximum(pull_ready[:, None], dep_end)
        # Pulls order by name alone — shared across steps.
        order = np.argsort(pull.name_code[w0], kind="stable")
        w = w0[order]
        group = np.argsort(pull.route_code[w], kind="stable")
        idx = order[group]
        wg = w0[idx]
        rc = pull.route_code[wg]
        occ_scan = occ_pull[:, wg]
        ends, _, link_free = _segmented_scan_steps(
            base[:, idx], occ_scan, rc, num_routes, link_free
        )
        np.add.at(link_busy, (rows, rc[None, :]), occ_scan)
        nc = pull.name_code[wg]
        if np.unique(nc).size == nc.size:
            end_by_name[:, nc] = np.maximum(end_by_name[:, nc], ends)
        else:
            np.maximum.at(end_by_name, (rows, nc[None, :]), ends)
        proc_end = np.empty((S, m))
        proc_end[:, group] = ends
        peak = proc_end.max(axis=1)
        better = peak > phase_end
        if np.any(better):
            hit_rows = np.flatnonzero(better)
            h = np.argmax(proc_end[hit_rows] == peak[hit_rows, None], axis=1)
            phase_end[hit_rows] = peak[hit_rows]
            last_idx[hit_rows] = w[h]
        tier_floor = np.maximum(tier_floor, ends.max(axis=1))
    step_seconds = phase_end + pull_cost

    # -- bookkeeping --------------------------------------------------------
    # Row-by-row 1-D sums: an axis-1 reduction blocks its pairwise
    # summation differently and drifts a ulp from the per-step totals,
    # which would break the batched path's bit-identity guarantee.
    comm = np.zeros(S)
    overhead = np.zeros(S)
    for terms, out in (
        ((8.0 * B_push / rates[rc_push]) if push.n else None, comm),
        ((per_frame[rc_push] * F_push) if push.n else None, overhead),
        ((8.0 * B_pull / rates[rc_pull]) if pull.n else None, comm),
        ((per_frame[rc_pull] * F_pull) if pull.n else None, overhead),
    ):
        if terms is not None:
            for s in range(S):
                out[s] += float(np.sum(terms[s]))
    codec = push_cost + server_cost + pull_cost
    exposed = np.maximum(0.0, step_seconds - compute - codec - overhead)
    safe_compute = np.where(compute > 0, compute, 1.0)
    achieved = np.where(
        compute > 0,
        np.minimum(1.0, np.maximum(0.0, (comm - exposed) / safe_compute)),
        0.0,
    )

    link_ids = sim.link_model.link_ids
    route_names = batch.route_names
    results = []
    for s, st in enumerate(steps):
        ss = float(step_seconds[s])
        busy_of = dict(zip(route_names, link_busy[s].tolist()))
        utilization = {
            link_id: (busy_of.get(link_id, 0.0) / ss if ss else 0.0)
            for link_id in link_ids
        }
        bi = int(bneck_idx[s])
        bottleneck = (push.records[bi], bool(bneck_bound[s])) if bi >= 0 else None
        li = int(last_idx[s])
        last_pull = pull.records[li] if li >= 0 else None
        results.append(
            SimulatedStep(
                step=st.step,
                step_seconds=ss,
                serialized_seconds=ss,
                compute_seconds=float(compute[s]),
                codec_seconds=float(codec[s]),
                comm_seconds=float(comm[s]),
                overhead_seconds=float(overhead[s]),
                exposed_seconds=float(exposed[s]),
                achieved_overlap=float(achieved[s]) if overlap else 0.0,
                link_utilization=utilization,
                critical_path=sim._critical_path(
                    bottleneck, last_pull, overlap, pull.n > 0
                ),
            )
        )
    return results
