"""Discrete-event network simulator for per-layer overlap scheduling.

Replays one training step as a timeline of events — per-layer backward
completions, per-worker codec pipelines, per-link transmissions — and
reports the honest step time, the *measured* overlap fraction (replacing
the analytic model's calibrated 0.9 constant), per-link utilization, and
the critical path. See ARCHITECTURE.md's "how step times are computed".
"""

from repro.netsim.events import (
    SimulatedRun,
    SimulatedStep,
    StepTransmissions,
    TransmissionRecord,
)
from repro.netsim.links import (
    LinkModel,
    ring_links,
    sharded_links,
    single_server_links,
)
from repro.netsim.scheduler import NetworkSimulator
from repro.netsim.topology import link_model_for

__all__ = [
    "TransmissionRecord",
    "StepTransmissions",
    "SimulatedStep",
    "SimulatedRun",
    "LinkModel",
    "single_server_links",
    "sharded_links",
    "ring_links",
    "NetworkSimulator",
    "link_model_for",
]
