"""Discrete-event network simulator for per-layer overlap scheduling.

Replays one training step as a timeline of events — per-layer backward
completions, per-worker codec pipelines, per-link transmissions — and
reports the honest step time, the *measured* overlap fraction (replacing
the analytic model's calibrated 0.9 constant), per-link utilization, and
the critical path. Async/SSP runs replay per-*update* event streams
instead (:class:`EventDrivenSimulator`): per-worker virtual clocks, FIFO
link interleaving, and blocking SSP barriers, reporting per-worker
throughput and the effective staleness distribution. See
ARCHITECTURE.md's "how step times are computed".
"""

from repro.netsim.events import (
    SimulatedExchange,
    SimulatedRun,
    SimulatedStep,
    SimulatedUpdate,
    StepTransmissions,
    TransmissionRecord,
    UpdateTransmissions,
    updates_from_bsp_steps,
)
from repro.netsim.links import (
    LinkModel,
    hierarchical_links,
    ring_links,
    sharded_links,
    single_server_links,
)
from repro.netsim.scheduler import (
    EventDrivenSimulator,
    NetworkSimulator,
    dependency_waves,
    per_tier_serialized_seconds,
    wire_occupancy_seconds,
)
from repro.netsim.replay import RecordedTraining, RecordingKey, SweepReplayCache
from repro.netsim.topology import link_model_for
from repro.netsim.vector import (
    RecordBatch,
    phase_partition,
    record_batch,
    wire_occupancy_batch,
)

__all__ = [
    "TransmissionRecord",
    "StepTransmissions",
    "UpdateTransmissions",
    "SimulatedStep",
    "SimulatedRun",
    "SimulatedUpdate",
    "SimulatedExchange",
    "updates_from_bsp_steps",
    "LinkModel",
    "single_server_links",
    "sharded_links",
    "ring_links",
    "hierarchical_links",
    "NetworkSimulator",
    "EventDrivenSimulator",
    "dependency_waves",
    "wire_occupancy_seconds",
    "per_tier_serialized_seconds",
    "link_model_for",
    "RecordingKey",
    "RecordedTraining",
    "SweepReplayCache",
    "RecordBatch",
    "record_batch",
    "phase_partition",
    "wire_occupancy_batch",
]
