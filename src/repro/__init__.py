"""repro — reproduction of *3LC: Lightweight and Effective Traffic
Compression for Distributed Machine Learning* (Lim, Andersen, Kaminsky,
MLSys 2019).

Package layout:

* :mod:`repro.core` — the 3LC codec (3-value quantization with sparsity
  multiplication, quartic encoding, zero-run encoding) and error feedback.
* :mod:`repro.compression` — the baseline schemes of the paper's evaluation
  behind a common :class:`~repro.compression.base.Compressor` interface.
* :mod:`repro.nn` — pure-NumPy neural-network substrate (conv, batch norm,
  residual networks, SGD with momentum, LR schedules).
* :mod:`repro.data` — deterministic synthetic CIFAR-like dataset with
  crop/flip augmentation.
* :mod:`repro.distributed` — in-process parameter-server training simulator
  (BSP, async/SSP, and ring all-reduce topologies).
* :mod:`repro.network` — link bandwidth / step-time model, traffic meter,
  and geo-distributed WAN topology.
* :mod:`repro.trace` — state-change trace capture and offline codec replay.
* :mod:`repro.harness` — experiment runner and table/figure regeneration.
"""

from repro.core import CompressionContext, ThreeLCCodec
from repro.version import __version__

__all__ = ["ThreeLCCodec", "CompressionContext", "__version__"]
