"""Per-worker minibatch iteration over a materialized shard.

Each worker owns a disjoint, deterministic shard of the training data
(paper: "Workers keep a local copy of the model and training dataset") and
iterates minibatches in a reshuffled order each epoch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ShardBatcher"]


class ShardBatcher:
    """Infinite shuffled minibatch stream over one worker's shard."""

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        rng: np.random.Generator,
    ):
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images/labels length mismatch")
        if batch_size < 1 or batch_size > images.shape[0]:
            raise ValueError(
                f"batch_size {batch_size} invalid for shard of {images.shape[0]}"
            )
        self.images = images
        self.labels = labels
        self.batch_size = int(batch_size)
        self.rng = rng
        self._order = np.arange(images.shape[0])
        self._cursor = images.shape[0]  # force initial shuffle

    @property
    def shard_size(self) -> int:
        return int(self.images.shape[0])

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the next ``(images, labels)`` minibatch."""
        if self._cursor + self.batch_size > self._order.size:
            self.rng.shuffle(self._order)
            self._cursor = 0
        idx = self._order[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.images[idx], self.labels[idx]
