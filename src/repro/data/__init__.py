"""Data substrate: synthetic CIFAR-like dataset, real CIFAR-10 loader,
augmentation, batching."""

from repro.data.augment import Augmenter, random_crop_flip
from repro.data.batcher import ShardBatcher
from repro.data.cifar import Cifar10Shards, load_cifar10, load_cifar10_batch
from repro.data.synthetic import DatasetSpec, SyntheticImageDataset

__all__ = [
    "DatasetSpec",
    "SyntheticImageDataset",
    "Cifar10Shards",
    "load_cifar10",
    "load_cifar10_batch",
    "Augmenter",
    "random_crop_flip",
    "ShardBatcher",
]
