"""Deterministic synthetic image-classification dataset.

Stand-in for CIFAR-10 (unavailable offline; see DESIGN.md substitutions).
Each of the ``num_classes`` classes is defined by a smooth random template
per channel (a low-resolution random field upsampled bilinearly — natural
images are dominated by low spatial frequencies). A sample is::

    image = contrast * template[class]
          + structured_noise          (a fresh smooth field per sample)
          + pixel_noise               (iid Gaussian)

with per-sample contrast jitter. The difficulty knobs (noise scales) are
chosen so that a small ResNet reaches high-but-not-perfect accuracy within
a few hundred steps: the task must be hard enough that accuracy *curves*
separate compression schemes, which is what Figures 4–8 measure.

Everything is generated from named substreams of one root seed, so any
(split, index) pair is reproducible in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.seeding import derive_rng

__all__ = ["SyntheticImageDataset", "DatasetSpec"]


def _upsample_bilinear(field: np.ndarray, size: int) -> np.ndarray:
    """Bilinearly upsample a (C, h, w) field to (C, size, size)."""
    c, h, w = field.shape
    # Sample positions in source coordinates (align_corners=True behaviour).
    ys = np.linspace(0, h - 1, size)
    xs = np.linspace(0, w - 1, size)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]
    top = field[:, y0][:, :, x0] * (1 - wx) + field[:, y0][:, :, x1] * wx
    bottom = field[:, y1][:, :, x0] * (1 - wx) + field[:, y1][:, :, x1] * wx
    return top * (1 - wy) + bottom * wy


@dataclass(frozen=True)
class DatasetSpec:
    """Shape and difficulty parameters of the synthetic task."""

    num_classes: int = 10
    channels: int = 3
    image_size: int = 16
    template_resolution: int = 4
    contrast_jitter: float = 0.35
    structured_noise: float = 0.55
    pixel_noise: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.image_size < self.template_resolution:
            raise ValueError("image_size must be >= template_resolution")


class SyntheticImageDataset:
    """Class-conditional smooth-field image dataset.

    Parameters
    ----------
    spec:
        Task parameters; defaults give a 10-class, 3×16×16 task.

    Notes
    -----
    Samples are generated lazily in batches via :meth:`sample`. A fixed
    evaluation set is materialized once by :meth:`test_set` (the paper's
    dedicated node computing top-1 test accuracy on held-out data).
    """

    def __init__(self, spec: DatasetSpec | None = None):
        self.spec = spec or DatasetSpec()
        rng = derive_rng(self.spec.seed, "templates")
        raw = rng.normal(
            0.0,
            1.0,
            size=(
                self.spec.num_classes,
                self.spec.channels,
                self.spec.template_resolution,
                self.spec.template_resolution,
            ),
        )
        self.templates = np.stack(
            [_upsample_bilinear(f, self.spec.image_size) for f in raw]
        ).astype(np.float32)

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return (self.spec.channels, self.spec.image_size, self.spec.image_size)

    def sample(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` labelled images using the supplied generator.

        Returns ``(images, labels)`` with images ``(count, C, H, W)``
        float32 and labels int64.
        """
        spec = self.spec
        labels = rng.integers(0, spec.num_classes, size=count)
        contrast = 1.0 + spec.contrast_jitter * rng.uniform(-1, 1, size=count)
        images = self.templates[labels] * contrast[:, None, None, None]
        if spec.structured_noise:
            low = rng.normal(
                0.0,
                spec.structured_noise,
                size=(
                    count,
                    spec.channels,
                    spec.template_resolution,
                    spec.template_resolution,
                ),
            )
            structured = np.stack(
                [_upsample_bilinear(f, spec.image_size) for f in low]
            )
            images = images + structured
        if spec.pixel_noise:
            images = images + rng.normal(0.0, spec.pixel_noise, size=images.shape)
        return images.astype(np.float32), labels.astype(np.int64)

    def train_shard(
        self, shard: int, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Materialize a deterministic training shard for one worker."""
        rng = derive_rng(self.spec.seed, "train", shard)
        return self.sample(count, rng)

    def test_set(self, count: int = 2000) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the held-out evaluation set (fixed across runs)."""
        rng = derive_rng(self.spec.seed, "test")
        return self.sample(count, rng)
