"""Training-time data augmentation (paper §5.2).

The paper applies "the standard data augmentation that randomly crops and
horizontally flips original images". This module reproduces it for NCHW
batches, fully vectorized: pad by ``pad`` pixels, take a random crop of the
original size, and flip each image left-right with probability 1/2.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_crop_flip", "Augmenter"]


def random_crop_flip(
    images: np.ndarray, rng: np.random.Generator, *, pad: int = 2
) -> np.ndarray:
    """Randomly crop (after zero-padding) and horizontally flip a batch.

    Parameters
    ----------
    images:
        Batch of shape ``(N, C, H, W)``.
    pad:
        Zero-padding on each spatial side before cropping (CIFAR uses 4 on
        32×32; default 2 suits the smaller synthetic images).
    """
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    ys = rng.integers(0, 2 * pad + 1, size=n)
    xs = rng.integers(0, 2 * pad + 1, size=n)
    # Gather crops via advanced indexing: build per-image row/col indices.
    row_idx = ys[:, None] + np.arange(h)[None, :]  # (N, H)
    col_idx = xs[:, None] + np.arange(w)[None, :]  # (N, W)
    batch_idx = np.arange(n)[:, None, None]
    out = padded[batch_idx, :, row_idx[:, :, None], col_idx[:, None, :]]
    # Advanced indexing puts the channel axis last: (N, H, W, C) -> NCHW.
    out = out.transpose(0, 3, 1, 2)
    flip = rng.random(n) < 0.5
    out[flip] = out[flip, :, :, ::-1]
    return np.ascontiguousarray(out, dtype=images.dtype)


class Augmenter:
    """Stateful augmentation pipeline bound to a generator."""

    def __init__(self, rng: np.random.Generator, *, pad: int = 2, enabled: bool = True):
        self.rng = rng
        self.pad = int(pad)
        self.enabled = bool(enabled)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return images
        return random_crop_flip(images, self.rng, pad=self.pad)
