"""CIFAR-10 binary-format loader with synthetic fallback.

The paper's workload is CIFAR-10 (Krizhevsky 2009). The evaluation
environment for this reproduction is offline, so experiments default to
the synthetic dataset — but a downstream user with the real data should be
able to drop it in. This module parses the standard ``cifar-10-batches-bin``
format (the one distributed as ``cifar-10-binary.tar.gz``): each record is
1 label byte followed by 3072 pixel bytes (3 channels × 32×32, channel-
planar, row-major).

:func:`load_cifar10` returns float32 NCHW arrays normalized to zero mean
and unit scale per channel, matching the preprocessing the training stack
expects. :class:`Cifar10Shards` adapts the arrays to the same shard
interface as :class:`~repro.data.synthetic.SyntheticImageDataset`, so a
``Cluster`` can train on real CIFAR-10 without code changes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.utils.seeding import derive_rng

__all__ = ["load_cifar10_batch", "load_cifar10", "Cifar10Shards", "RECORD_BYTES"]

_LABEL_BYTES = 1
_IMAGE_BYTES = 3 * 32 * 32
#: Bytes per record in the CIFAR-10 binary format.
RECORD_BYTES = _LABEL_BYTES + _IMAGE_BYTES

_TRAIN_FILES = [f"data_batch_{i}.bin" for i in range(1, 6)]
_TEST_FILE = "test_batch.bin"


def load_cifar10_batch(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Parse one binary batch file into ``(images, labels)``.

    Images are uint8 NCHW ``(n, 3, 32, 32)``; labels int64 in [0, 10).
    """
    raw = np.fromfile(str(path), dtype=np.uint8)
    if raw.size == 0 or raw.size % RECORD_BYTES:
        raise ValueError(
            f"{path}: size {raw.size} is not a multiple of {RECORD_BYTES}"
        )
    records = raw.reshape(-1, RECORD_BYTES)
    labels = records[:, 0].astype(np.int64)
    if labels.max() > 9:
        raise ValueError(f"{path}: label out of range (corrupt file?)")
    images = records[:, 1:].reshape(-1, 3, 32, 32)
    return images, labels


def load_cifar10(
    root: str | Path,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Load the full dataset from a ``cifar-10-batches-bin`` directory.

    Returns ``(train_x, train_y, test_x, test_y)`` with images float32,
    per-channel standardized using training-set statistics.
    """
    root = Path(root)
    missing = [f for f in _TRAIN_FILES + [_TEST_FILE] if not (root / f).exists()]
    if missing:
        raise FileNotFoundError(f"{root}: missing CIFAR-10 files {missing}")
    train_parts = [load_cifar10_batch(root / f) for f in _TRAIN_FILES]
    train_x = np.concatenate([x for x, _ in train_parts])
    train_y = np.concatenate([y for _, y in train_parts])
    test_x, test_y = load_cifar10_batch(root / _TEST_FILE)

    train_f = train_x.astype(np.float32) / 255.0
    test_f = test_x.astype(np.float32) / 255.0
    mean = train_f.mean(axis=(0, 2, 3), keepdims=True)
    std = train_f.std(axis=(0, 2, 3), keepdims=True) + 1e-7
    return (
        ((train_f - mean) / std).astype(np.float32),
        train_y,
        ((test_f - mean) / std).astype(np.float32),
        test_y,
    )


class Cifar10Shards:
    """Adapter exposing CIFAR-10 through the synthetic-dataset interface.

    Workers receive contiguous, disjoint shards of a seed-shuffled
    training set; ``test_set`` returns a prefix of the real test split.
    """

    def __init__(self, root: str | Path, *, num_shards: int, seed: int = 0):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.train_x, self.train_y, self.test_x, self.test_y = load_cifar10(root)
        self.num_shards = int(num_shards)
        order = np.arange(self.train_x.shape[0])
        derive_rng(seed, "cifar-shuffle").shuffle(order)
        self._order = order

    @property
    def num_classes(self) -> int:
        return 10

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return (3, 32, 32)

    def train_shard(self, shard: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``shard``-th worker's ``count`` examples (disjoint across
        workers as long as ``num_shards * count`` fits the training set)."""
        if not (0 <= shard < self.num_shards):
            raise ValueError(f"shard {shard} out of range")
        total = self._order.size
        if count * self.num_shards > total:
            raise ValueError(
                f"{self.num_shards} shards x {count} exceeds {total} examples"
            )
        index = self._order[shard * count : (shard + 1) * count]
        return self.train_x[index], self.train_y[index]

    def test_set(self, count: int = 10_000) -> tuple[np.ndarray, np.ndarray]:
        count = min(count, self.test_x.shape[0])
        return self.test_x[:count], self.test_y[:count]
