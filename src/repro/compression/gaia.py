"""Gaia-style significance filtering (paper §6, reference [17]).

Gaia ships only "significant" state changes across WAN links, judging
significance by the update's *relative* magnitude and shrinking the
significance threshold as training progresses so that later (smaller but
more decisive) updates still flow. 3LC's §6 observation is that it gets
the same send-more-later behaviour for free ("3LC transmits larger
compressed data in the later stage of training without having to control
the compression level explicitly") — this baseline exists to reproduce
that comparison.

Substitution note (recorded in DESIGN.md): Gaia defines significance as
``|update| / |parameter value|``, but parameter values are not visible at
the compression layer of this repo (contexts see only state-change
tensors, the same boundary the paper's own TensorFlow prototype had —
its §5.1 says magnitude, not relative magnitude, was used "for better
accuracy"). We therefore normalize by the tensor's running RMS of
*applied updates*, which preserves the two behaviours the comparison needs:
per-coordinate relative selection and a time-decaying threshold.

Wire format: selection bitmap + float32 values, identical to the top-k
sparsifiers, so the traffic accounting is directly comparable. Unsent
changes accumulate in an error buffer (Gaia's "aggregated delta").
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage

__all__ = ["GaiaCompressor"]


class _GaiaContext(CompressorContext):
    def __init__(
        self,
        shape: tuple[int, ...],
        initial_threshold: float,
        final_threshold: float,
        decay_steps: int,
    ):
        super().__init__(shape)
        self.initial_threshold = initial_threshold
        self.final_threshold = final_threshold
        self.decay_steps = decay_steps
        self.buffer = ErrorAccumulationBuffer(self.shape)
        self._rms = 0.0  # running RMS of applied updates (significance base)
        self._step = 0

    def threshold_at(self, step: int) -> float:
        """Linearly decayed relative significance threshold."""
        if self.decay_steps == 0 or step >= self.decay_steps:
            return self.final_threshold
        frac = step / self.decay_steps
        return self.initial_threshold + frac * (
            self.final_threshold - self.initial_threshold
        )

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        accumulated = self.buffer.add(arr)
        threshold = self.threshold_at(self._step)
        self._step += 1

        scale = self._rms if self._rms > 0.0 else float(
            np.sqrt(np.mean(np.square(accumulated))) or 1.0
        )
        selected = np.abs(accumulated) >= threshold * scale
        flat = selected.reshape(-1)
        values = accumulated.reshape(-1)[flat].astype("<f4")
        bitmap = np.packbits(flat)
        message = WireMessage(
            codec_id=CodecId.GAIA_SPARSE,
            shape=arr.shape,
            payload=bitmap.tobytes() + values.tobytes(),
            dtype=np.float32,
        )
        reconstruction = np.where(selected, accumulated, np.float32(0.0)).astype(
            np.float32
        )
        self.buffer.subtract(reconstruction)
        # Update the significance base from what was actually applied so the
        # relative criterion tracks the decaying update scale.
        applied_rms = float(np.sqrt(np.mean(np.square(reconstruction))))
        self._rms = 0.9 * self._rms + 0.1 * applied_rms if self._rms else applied_rms
        return CompressionResult(message, reconstruction)

    def residual_norm(self) -> float:
        return self.buffer.l2_norm()

    def state_dict(self) -> dict:
        return {
            "residual": self.buffer.residual.copy(),
            "rms": self._rms,
            "step": self._step,
        }

    def load_state(self, state: dict) -> None:
        self.buffer.load_residual(self._checked_residual(state))
        self._rms = float(state["rms"])
        self._step = int(state["step"])


class GaiaCompressor(Compressor):
    """``Gaia``: relative-significance filtering with a decaying threshold.

    Parameters
    ----------
    initial_threshold:
        Starting relative threshold (Gaia's WAN default is 1% = 0.01 of the
        parameter value; relative to update RMS, 1.0 selects roughly the
        above-average half).
    final_threshold:
        Threshold after ``decay_steps`` (Gaia shrinks it as the learning
        rate decays).
    decay_steps:
        Steps over which the threshold decays linearly.
    """

    def __init__(
        self,
        initial_threshold: float = 2.0,
        final_threshold: float = 0.5,
        decay_steps: int = 200,
    ):
        if initial_threshold < final_threshold:
            raise ValueError("initial_threshold must be >= final_threshold")
        if final_threshold < 0:
            raise ValueError("thresholds must be >= 0")
        if decay_steps < 0:
            raise ValueError(f"decay_steps must be >= 0, got {decay_steps}")
        self.initial_threshold = float(initial_threshold)
        self.final_threshold = float(final_threshold)
        self.decay_steps = int(decay_steps)
        self.name = "Gaia"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _GaiaContext(
            shape, self.initial_threshold, self.final_threshold, self.decay_steps
        )

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.GAIA_SPARSE:
            raise ValueError(f"not a Gaia message: {message.codec_id!r}")
        count = message.element_count
        bitmap_bytes = -(-count // 8)
        bitmap = np.frombuffer(message.payload[:bitmap_bytes], dtype=np.uint8)
        selected = np.unpackbits(bitmap, count=count).astype(bool)
        values = np.frombuffer(message.payload[bitmap_bytes:], dtype="<f4")
        if values.size != int(np.count_nonzero(selected)):
            raise ValueError("selected-value count mismatch")
        out = np.zeros(count, dtype=np.float32)
        out[selected] = values
        return out.reshape(message.shape)
