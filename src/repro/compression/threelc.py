"""3LC adapted to the common :class:`Compressor` interface.

Thin wrapper around :class:`repro.core.codec.ThreeLCCodec` /
:class:`repro.core.codec.CompressionContext` so the parameter-server
simulator and the harness treat 3LC exactly like every baseline.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.codec import CompressionContext as CoreContext
from repro.core.codec import ThreeLCCodec
from repro.core.packets import WireMessage

__all__ = ["ThreeLCCompressor"]


class _ThreeLCContext(CompressorContext):
    def __init__(self, shape: tuple[int, ...], core: CoreContext):
        super().__init__(shape)
        self.core = core

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        return self.core.compress(self._check_shape(tensor))

    def residual_norm(self) -> float:
        return self.core.residual_norm()

    def state_dict(self) -> dict:
        return self.core.state_dict()

    def load_state(self, state: dict) -> None:
        if "residual" in state:
            # Validate against *this* context's shape before touching the
            # core buffer: a checkpoint restored into the wrong tensor's
            # context must fail loudly, not silently corrupt error
            # feedback.
            state = dict(state, residual=self._checked_residual(state))
        self.core.load_state(state)


class ThreeLCCompressor(Compressor):
    """``3LC (s=...)``: the paper's full design.

    Parameters
    ----------
    sparsity_multiplier:
        The compression-level knob ``s`` (``1 <= s < 2``).
    use_zre:
        Disable to measure the "No ZRE" ablation of Table 2.
    error_feedback:
        Disable only for ablation; the paper's 3LC always corrects errors.
    """

    def __init__(
        self,
        sparsity_multiplier: float = 1.0,
        *,
        use_zre: bool = True,
        error_feedback: bool = True,
    ):
        self.codec = ThreeLCCodec(sparsity_multiplier, use_zre=use_zre)
        self.error_feedback = bool(error_feedback)
        suffix = "" if use_zre else ", no ZRE"
        self.name = f"3LC (s={sparsity_multiplier:.2f}{suffix})"

    @property
    def sparsity_multiplier(self) -> float:
        return self.codec.sparsity_multiplier

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _ThreeLCContext(
            shape, CoreContext(shape, self.codec, error_feedback=self.error_feedback)
        )

    def decompress(self, message: WireMessage) -> np.ndarray:
        return self.codec.decompress(message)
