"""QSGD baseline: stochastic multi-level quantization + Elias coding.

Reproduces Alistarh et al.'s QSGD (paper §6, reference [3]), the main
multi-bit stochastic quantization scheme 3LC compares against. Each value
is quantized to one of ``levels + 1`` magnitude rungs relative to the
tensor's L2 norm, with stochastic rounding that makes the quantized tensor
an *unbiased* estimator of the input — QSGD's convergence story, in
contrast to 3LC's deterministic rounding plus error feedback.

Wire format: the L2 norm as a scalar, a packed sign bitmap, and the level
integers Elias-gamma coded (levels are shifted by one; gamma cannot code
zero). Gamma coding is what makes QSGD's traffic adaptive: near-zero
tensors cost ~1 bit per value, dense ones up to ``2*log2(levels)+1``.

No error accumulation buffer is kept: QSGD relies on unbiasedness rather
than error correction, exactly the design choice §3.1 argues against for
3-value quantization ("error correction ... achieves better accuracy than
stochastic quantization in our evaluation").
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.elias import (
    elias_delta_decode,
    elias_delta_encode,
    elias_gamma_decode,
    elias_gamma_encode,
)
from repro.core.packets import CodecId, WireMessage
from repro.utils.seeding import derive_rng

__all__ = ["QSGDCompressor", "qsgd_quantize", "qsgd_dequantize"]

#: Elias coders selectable per compressor. The QSGD paper's analysis uses
#: recursive Elias coding, whose first two rungs these are; gamma wins on
#: the near-ternary level distributions low-bit QSGD emits, delta at high
#: bit widths (scalar 2 in the wire frame says which one was used, so
#: decoding is self-describing).
_CODINGS = {
    "gamma": (0.0, elias_gamma_encode, elias_gamma_decode),
    "delta": (1.0, elias_delta_encode, elias_delta_decode),
}
_CODING_BY_ID = {int(cid): (enc, dec) for cid, enc, dec in _CODINGS.values()}


def qsgd_quantize(
    tensor: np.ndarray, levels: int, rng: np.random.Generator
) -> tuple[float, np.ndarray, np.ndarray]:
    """Stochastically quantize ``tensor`` onto ``levels`` magnitude rungs.

    Returns ``(norm, signs, level_indices)`` where ``signs`` is boolean
    (True = negative) and ``level_indices`` is integer in ``[0, levels]``.
    The expectation of ``sign * norm * level / levels`` equals the input.
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    arr = np.asarray(tensor, dtype=np.float32)
    norm = float(np.linalg.norm(arr))
    if norm == 0.0:
        zeros = np.zeros(arr.shape, dtype=np.int64)
        return 0.0, np.zeros(arr.shape, dtype=bool), zeros
    scaled = np.abs(arr) * (levels / norm)
    floor = np.floor(scaled)
    frac = scaled - floor
    bump = rng.random(arr.shape, dtype=np.float32) < frac
    level = (floor + bump).astype(np.int64)
    return norm, arr < 0, level


def qsgd_dequantize(
    norm: float, signs: np.ndarray, levels_idx: np.ndarray, levels: int
) -> np.ndarray:
    """Reconstruct the unbiased estimate from quantized components."""
    magnitude = levels_idx.astype(np.float32) * np.float32(norm / levels)
    return np.where(signs, -magnitude, magnitude).astype(np.float32)


class _QSGDContext(CompressorContext):
    def __init__(
        self,
        shape: tuple[int, ...],
        levels: int,
        rng: np.random.Generator,
        coding: str,
    ):
        super().__init__(shape)
        self.levels = levels
        self.rng = rng
        self.coding_id, self._encode, _ = _CODINGS[coding]

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        norm, signs, level = qsgd_quantize(arr, self.levels, self.rng)
        sign_bytes = np.packbits(signs.reshape(-1)).tobytes()
        coded = self._encode(level.reshape(-1) + 1)
        message = WireMessage(
            codec_id=CodecId.QSGD,
            shape=arr.shape,
            payload=sign_bytes + coded,
            scalars=(norm, float(self.levels), self.coding_id),
            dtype=np.float32,
        )
        reconstruction = qsgd_dequantize(norm, signs, level, self.levels)
        return CompressionResult(message, reconstruction)

    def state_dict(self) -> dict:
        return {"rng": self.rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state["rng"]


class QSGDCompressor(Compressor):
    """``QSGD (b-bit)``: unbiased stochastic quantization with gamma coding.

    Parameters
    ----------
    bits:
        Resolution of the magnitude grid; ``levels = 2**bits - 1``. The
        QSGD paper evaluates 2-8 bits; 2 bits (3 magnitude rungs) is the
        closest analogue of 3LC's 3-value quantization.
    seed:
        Root seed for the per-context stochastic rounding streams.
    coding:
        Integer coder for the level stream: ``"gamma"`` (default; best on
        the near-ternary distributions low-bit QSGD emits) or ``"delta"``
        (asymptotically tighter, wins at high bit widths).
    """

    def __init__(self, bits: int = 2, seed: int = 0, *, coding: str = "gamma"):
        if not (1 <= bits <= 16):
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        if coding not in _CODINGS:
            raise ValueError(
                f"coding must be one of {sorted(_CODINGS)}, got {coding!r}"
            )
        self.bits = int(bits)
        self.levels = (1 << self.bits) - 1
        self.seed = int(seed)
        self.coding = coding
        suffix = "" if coding == "gamma" else f", {coding}"
        self.name = f"QSGD ({bits}-bit{suffix})"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _QSGDContext(
            shape,
            self.levels,
            derive_rng(self.seed, "qsgd", self.bits, *key),
            self.coding,
        )

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.QSGD:
            raise ValueError(f"not a QSGD message: {message.codec_id!r}")
        if len(message.scalars) == 2:  # frames from before the coding field
            norm, levels_f = message.scalars
            coding_id = 0
        else:
            norm, levels_f, coding_f = message.scalars
            coding_id = int(coding_f)
        if coding_id not in _CODING_BY_ID:
            raise ValueError(f"unknown QSGD coding id {coding_id}")
        _, decode = _CODING_BY_ID[coding_id]
        levels = int(levels_f)
        count = message.element_count
        sign_bytes = -(-count // 8)
        signs = np.unpackbits(
            np.frombuffer(message.payload[:sign_bytes], dtype=np.uint8), count=count
        ).astype(bool)
        level = decode(message.payload[sign_bytes:], count).astype(np.int64) - 1
        if level.size and (level.min() < 0 or level.max() > levels):
            raise ValueError("QSGD level out of range (corrupted frame?)")
        out = qsgd_dequantize(norm, signs, level, levels) if norm else np.zeros(
            count, dtype=np.float32
        )
        return out.reshape(message.shape)
