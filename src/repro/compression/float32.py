"""Uncompressed 32-bit float transmission — the paper's baseline (§5.1).

The payload is the raw little-endian float32 buffer. Lossless, so no error
feedback is needed and the reconstruction equals the input bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.packets import CodecId, WireMessage

__all__ = ["Float32Compressor"]


class _Float32Context(CompressorContext):
    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        contiguous = np.ascontiguousarray(arr, dtype="<f4")
        message = WireMessage(
            codec_id=CodecId.FLOAT32,
            shape=arr.shape,
            payload=contiguous.tobytes(),
            dtype=np.float32,
        )
        return CompressionResult(message, contiguous.copy())


class Float32Compressor(Compressor):
    """``32-bit float``: transmit state changes verbatim."""

    name = "32-bit float"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _Float32Context(shape)

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.FLOAT32:
            raise ValueError(f"not a float32 message: {message.codec_id!r}")
        flat = np.frombuffer(message.payload, dtype="<f4")
        if flat.size != message.element_count:
            raise ValueError("payload size mismatch")
        return flat.reshape(message.shape).astype(np.float32)
