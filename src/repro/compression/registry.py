"""Name-based registry of compression schemes.

Maps the scheme labels used throughout the paper's evaluation (Table 1) to
constructed :class:`~repro.compression.base.Compressor` instances, so the
harness, examples, and CLI can select designs by string.
"""

from __future__ import annotations

from typing import Callable

from repro.compression.adaptive import AdaptiveThreeLCCompressor
from repro.compression.base import Compressor
from repro.compression.dgc import DGCCompressor
from repro.compression.float16 import Float16Compressor
from repro.compression.float32 import Float32Compressor
from repro.compression.gaia import GaiaCompressor
from repro.compression.int8 import Int8Compressor
from repro.compression.local_steps import LocalStepsCompressor
from repro.compression.lowrank import SufficientFactorCompressor
from repro.compression.onebit import OneBitCompressor
from repro.compression.qsgd import QSGDCompressor
from repro.compression.roundrobin import RoundRobinCompressor
from repro.compression.stochastic_ternary import StochasticTernaryCompressor
from repro.compression.threelc import ThreeLCCompressor
from repro.compression.topk import TopKCompressor

__all__ = [
    "make_compressor",
    "available_schemes",
    "TABLE1_SCHEMES",
    "RELATED_WORK_SCHEMES",
]

_FACTORIES: dict[str, Callable[[int], Compressor]] = {
    "32-bit float": lambda seed: Float32Compressor(),
    "8-bit int": lambda seed: Int8Compressor(),
    "Stoch 3-value + QE": lambda seed: StochasticTernaryCompressor(seed=seed),
    "MQE 1-bit int": lambda seed: OneBitCompressor(),
    "25% sparsification": lambda seed: TopKCompressor(0.25, seed=seed),
    "5% sparsification": lambda seed: TopKCompressor(0.05, seed=seed),
    "2 local steps": lambda seed: LocalStepsCompressor(2),
    "3LC (s=1.00)": lambda seed: ThreeLCCompressor(1.00),
    "3LC (s=1.00, no ZRE)": lambda seed: ThreeLCCompressor(1.00, use_zre=False),
    "3LC (s=1.50)": lambda seed: ThreeLCCompressor(1.50),
    "3LC (s=1.75)": lambda seed: ThreeLCCompressor(1.75),
    "3LC (s=1.90)": lambda seed: ThreeLCCompressor(1.90),
    # Extension baselines beyond the paper's Table 1 (see DESIGN.md).
    "16-bit float": lambda seed: Float16Compressor(),
    "round-robin 1/4": lambda seed: RoundRobinCompressor(4),
    # Related-work designs the paper positions 3LC against (§6).
    "Stoch 3-value + QE (clip 2.5)": lambda seed: StochasticTernaryCompressor(
        seed=seed, clip_factor=2.5
    ),
    "QSGD (2-bit)": lambda seed: QSGDCompressor(2, seed=seed),
    "QSGD (4-bit)": lambda seed: QSGDCompressor(4, seed=seed),
    # Warmup sized to the reproduction's standard 200-step runs (DGC's
    # paper uses ~4 epochs of warmup out of ~70: the same ~10% of budget).
    "DGC (0.10%)": lambda seed: DGCCompressor(0.001, warmup_steps=20, seed=seed),
    "Gaia": lambda seed: GaiaCompressor(),
    "sufficient factors (rank 1)": lambda seed: SufficientFactorCompressor(1),
    "sufficient factors (rank 4)": lambda seed: SufficientFactorCompressor(4),
    # Extensions built on 3LC itself.
    "3LC (adaptive, 0.5 bits)": lambda seed: AdaptiveThreeLCCompressor(0.5),
    "4 local steps": lambda seed: LocalStepsCompressor(4),
    "8 local steps": lambda seed: LocalStepsCompressor(8),
    "2 local steps + 3LC (s=1.00)": lambda seed: LocalStepsCompressor(
        2, inner=ThreeLCCompressor(1.00)
    ),
}

_TABLE1_EXCLUDED = frozenset(
    name
    for name in (
        "3LC (s=1.00, no ZRE)",
        "16-bit float",
        "round-robin 1/4",
        "Stoch 3-value + QE (clip 2.5)",
        "QSGD (2-bit)",
        "QSGD (4-bit)",
        "DGC (0.10%)",
        "Gaia",
        "sufficient factors (rank 1)",
        "sufficient factors (rank 4)",
        "3LC (adaptive, 0.5 bits)",
        "4 local steps",
        "8 local steps",
        "2 local steps + 3LC (s=1.00)",
    )
)

#: The eleven compared designs of Table 1, in paper order.
TABLE1_SCHEMES: tuple[str, ...] = tuple(
    name for name in _FACTORIES if name not in _TABLE1_EXCLUDED
)

#: §6 related-work designs plus the 3LC extensions, for the extended
#: comparison (``benchmarks/bench_related_work.py``). The float32 baseline
#: and reference 3LC rows anchor the comparison.
RELATED_WORK_SCHEMES: tuple[str, ...] = (
    "32-bit float",
    "QSGD (2-bit)",
    "QSGD (4-bit)",
    "DGC (0.10%)",
    "Gaia",
    "sufficient factors (rank 4)",
    "3LC (adaptive, 0.5 bits)",
    "2 local steps + 3LC (s=1.00)",
    "3LC (s=1.00)",
)


def available_schemes() -> tuple[str, ...]:
    """All registered scheme names."""
    return tuple(_FACTORIES)


def make_compressor(name: str, *, seed: int = 0) -> Compressor:
    """Construct a compressor by its paper label.

    Parameters
    ----------
    name:
        One of :func:`available_schemes`, e.g. ``"3LC (s=1.75)"``.
    seed:
        Root seed for stochastic schemes (stochastic ternary quantization,
        top-k threshold sampling); irrelevant for deterministic schemes.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown scheme {name!r}; known schemes: {known}") from None
    return factory(seed)
