"""Round-robin partial gradient exchange (Ako-style; paper §6, ref [37]).

Ako (Watcharapichat et al., SoCC 2016) partitions each gradient tensor and
transmits one partition per step, cycling round-robin; unsent partitions
accumulate locally. Traffic per step is ``1/P`` of the tensor (plus
framing), and every element is transmitted exactly once every ``P`` steps
— a *deterministic* counterpart to magnitude-based sparsification that the
paper lists among low-overhead selection strategies.

Wire format: the partition index travels in the scalar header; the payload
is the partition's float32 values. No bitmap is needed because partition
boundaries are a pure function of (tensor size, P, index).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage

__all__ = ["RoundRobinCompressor", "partition_bounds"]


def partition_bounds(size: int, partitions: int, index: int) -> tuple[int, int]:
    """Half-open flat-index range of one partition.

    Partitions are as equal as possible; the first ``size % partitions``
    partitions get one extra element.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if not (0 <= index < partitions):
        raise ValueError(f"index {index} out of range for {partitions} partitions")
    base, extra = divmod(size, partitions)
    start = index * base + min(index, extra)
    length = base + (1 if index < extra else 0)
    return start, start + length


class _RoundRobinContext(CompressorContext):
    def __init__(self, shape: tuple[int, ...], partitions: int):
        super().__init__(shape)
        self.partitions = partitions
        self.buffer = ErrorAccumulationBuffer(self.shape)
        self._step = 0

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        accumulated = self.buffer.add(arr)
        index = self._step % self.partitions
        self._step += 1
        start, end = partition_bounds(arr.size, self.partitions, index)
        flat = accumulated.reshape(-1)
        values = np.ascontiguousarray(flat[start:end], dtype="<f4")
        message = WireMessage(
            codec_id=CodecId.ROUND_ROBIN,
            shape=arr.shape,
            payload=values.tobytes(),
            scalars=(float(self.partitions), float(index)),
            dtype=np.float32,
        )
        reconstruction = np.zeros_like(accumulated)
        reconstruction.reshape(-1)[start:end] = values
        self.buffer.subtract(reconstruction)
        return CompressionResult(message, reconstruction)

    def residual_norm(self) -> float:
        return self.buffer.l2_norm()

    def state_dict(self) -> dict:
        return {"residual": self.buffer.residual.copy(), "step": self._step}

    def load_state(self, state: dict) -> None:
        self.buffer.load_residual(self._checked_residual(state))
        self._step = int(state["step"])


class RoundRobinCompressor(Compressor):
    """``round-robin 1/P``: transmit one tensor partition per step."""

    def __init__(self, partitions: int = 4):
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.partitions = int(partitions)
        self.name = f"round-robin 1/{partitions}"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _RoundRobinContext(shape, self.partitions)

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.ROUND_ROBIN:
            raise ValueError(f"not a round-robin message: {message.codec_id!r}")
        partitions, index = (int(s) for s in message.scalars)
        count = message.element_count
        start, end = partition_bounds(count, partitions, index)
        values = np.frombuffer(message.payload, dtype="<f4")
        if values.size != end - start:
            raise ValueError("partition size mismatch")
        out = np.zeros(count, dtype=np.float32)
        out[start:end] = values
        return out.reshape(message.shape)
