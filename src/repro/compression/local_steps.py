"""Infrequent communication baseline (paper §5.1, ``2 local steps``).

Transmits state changes every ``period`` local steps. Updates that are not
sent are accumulated locally (via the same error-accumulation machinery)
and folded into the next transmitted step. With ``period=2`` this halves
the traffic and effectively doubles the global batch size — the federated-
learning-style design the paper evaluates.

The wrapped inner compressor defaults to uncompressed float32, matching the
paper's design (it isolates the effect of *infrequency*, not encoding).
On off-steps :meth:`compress` returns ``None``; the cluster transmits
nothing for the tensor and the server applies no update.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.compression.float32 import Float32Compressor
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import WireMessage

__all__ = ["LocalStepsCompressor"]


class _LocalStepsContext(CompressorContext):
    def __init__(
        self, shape: tuple[int, ...], period: int, inner: CompressorContext
    ):
        super().__init__(shape)
        self.period = period
        self.inner = inner
        self.buffer = ErrorAccumulationBuffer(self.shape)
        self._step = 0

    def compress(self, tensor: np.ndarray) -> CompressionResult | None:
        arr = self._check_shape(tensor)
        accumulated = self.buffer.add(arr)
        self._step += 1
        if self._step % self.period != 0:
            return None
        result = self.inner.compress(accumulated)
        if result is None:  # pragma: no cover - inner schemes always transmit
            raise RuntimeError("inner compressor deferred on a transmit step")
        self.buffer.subtract(result.reconstruction)
        return result

    def residual_norm(self) -> float:
        return self.buffer.l2_norm()

    def state_dict(self) -> dict:
        return {
            "residual": self.buffer.residual.copy(),
            "step": self._step,
            "inner": self.inner.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.buffer.load_residual(self._checked_residual(state))
        self._step = int(state["step"])
        self.inner.load_state(state["inner"])


class LocalStepsCompressor(Compressor):
    """``N local steps``: transmit every ``period`` steps, accumulate between."""

    def __init__(self, period: int = 2, inner: Compressor | None = None):
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period!r}")
        self.period = int(period)
        self.inner = inner if inner is not None else Float32Compressor()
        self.defers_transmission = self.period > 1
        self.name = f"{period} local steps"
        if inner is not None and not isinstance(inner, Float32Compressor):
            # Compositions (e.g. local steps over 3LC) carry both labels.
            self.name += f" + {inner.name}"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _LocalStepsContext(
            shape, self.period, self.inner.make_context(shape, key=key)
        )

    def make_bypass_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        # Local-steps changes the transmission *schedule*, which applies to
        # small tensors too — they are merely exempt from lossy encoding.
        return _LocalStepsContext(
            shape, self.period, Float32Compressor().make_context(shape, key=key)
        )

    def decompress(self, message: WireMessage) -> np.ndarray:
        return self.inner.decompress(message)
