"""Compression schemes compared in the paper's evaluation (§5.1).

All designs implement :class:`~repro.compression.base.Compressor`:

=====================  ====================================================
``32-bit float``       uncompressed baseline
``8-bit int``          TPU-style 255-level linear quantization
``Stoch 3-value + QE`` TernGrad-like unbiased ternary + quartic encoding
``MQE 1-bit int``      1-bit SGD with minimum-squared-error magnitudes
``25%/5% sparsif.``    magnitude top-k with bitmap + error accumulation
``2 local steps``      transmit every 2nd step, accumulate between
``3LC (s=...)``        the paper's full design
=====================  ====================================================

Related-work baselines from §6 (see ``RELATED_WORK_SCHEMES``):

=============================  ============================================
``QSGD (b-bit)``               unbiased multi-level quantization + Elias
``DGC (0.10%)``                deep gradient compression w/ momentum corr.
``Gaia``                       decaying relative-significance filter
``sufficient factors (rank r)`` truncated-SVD factor transmission
``3LC (adaptive)``             feedback-controlled sparsity multiplier
=============================  ============================================
"""

from repro.compression.adaptive import AdaptiveThreeLCCompressor
from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.compression.dgc import DGCCompressor, WarmupSchedule
from repro.compression.float16 import Float16Compressor
from repro.compression.float32 import Float32Compressor
from repro.compression.fusion import (
    Bucket,
    FusedBucketContext,
    FusedCompressionResult,
    FusionPlan,
    build_fusion_plan,
    split_bucket,
)
from repro.compression.gaia import GaiaCompressor
from repro.compression.int8 import Int8Compressor
from repro.compression.local_steps import LocalStepsCompressor
from repro.compression.lowrank import SufficientFactorCompressor
from repro.compression.onebit import OneBitCompressor
from repro.compression.qsgd import QSGDCompressor
from repro.compression.registry import (
    RELATED_WORK_SCHEMES,
    TABLE1_SCHEMES,
    available_schemes,
    make_compressor,
)
from repro.compression.roundrobin import RoundRobinCompressor
from repro.compression.stochastic_ternary import StochasticTernaryCompressor
from repro.compression.threelc import ThreeLCCompressor
from repro.compression.topk import TopKCompressor

__all__ = [
    "Compressor",
    "CompressorContext",
    "CompressionResult",
    "Bucket",
    "FusionPlan",
    "FusedBucketContext",
    "FusedCompressionResult",
    "build_fusion_plan",
    "split_bucket",
    "AdaptiveThreeLCCompressor",
    "DGCCompressor",
    "Float16Compressor",
    "Float32Compressor",
    "GaiaCompressor",
    "Int8Compressor",
    "OneBitCompressor",
    "QSGDCompressor",
    "RoundRobinCompressor",
    "StochasticTernaryCompressor",
    "SufficientFactorCompressor",
    "TopKCompressor",
    "LocalStepsCompressor",
    "ThreeLCCompressor",
    "WarmupSchedule",
    "make_compressor",
    "available_schemes",
    "TABLE1_SCHEMES",
    "RELATED_WORK_SCHEMES",
]
