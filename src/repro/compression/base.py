"""Common interface for all state-change compression schemes.

Every compared design in the paper's evaluation (§5.1) is implemented as a
:class:`Compressor` — a stateless scheme descriptor — that manufactures
per-tensor, per-direction :class:`CompressorContext` objects holding any
cross-step state (error accumulation buffers, RNG streams, local-step
counters). This mirrors 3LC's "one compression context per tensor per
direction" architecture and lets the parameter-server simulator treat every
scheme uniformly.

Contexts may return ``None`` from :meth:`CompressorContext.compress` to
signal "nothing transmitted this step" (used by the N-local-steps design);
the cluster then skips the wire entirely for that tensor.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.codec import CompressionResult
from repro.core.packets import WireMessage

__all__ = [
    "Compressor",
    "CompressorContext",
    "CompressionResult",
    "snapshot_contexts",
    "restore_contexts",
]


class CompressorContext(abc.ABC):
    """Cross-step state for one tensor travelling in one direction."""

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(int(d) for d in shape)

    @abc.abstractmethod
    def compress(self, tensor: np.ndarray) -> CompressionResult | None:
        """Compress one step's state change.

        Returns ``None`` when the scheme defers transmission this step
        (the deferred update must then be folded into a later step).
        """

    def residual_norm(self) -> float:
        """L2 norm of any untransmitted residual (0 for lossless schemes)."""
        return 0.0

    def state_dict(self) -> dict:
        """Cross-step state for checkpointing.

        Error buffers, momentum accumulators, step counters, and RNG
        states are *training state*: dropping them on restart silently
        loses every deferred update. Contexts with such state override
        this pair; stateless contexts return ``{}``. The returned dict
        holds only arrays, numbers, and nested dicts (``numpy.savez`` /
        JSON friendly).
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into a fresh context."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but got state keys "
                f"{sorted(state)}"
            )

    def _checked_residual(self, state: dict, key: str = "residual") -> np.ndarray:
        """Validate and return a residual array from checkpoint state."""
        arr = np.asarray(state[key], dtype=np.float32)
        if arr.shape != self.shape:
            raise ValueError(
                f"checkpoint residual shape {arr.shape} != context {self.shape}"
            )
        return arr

    def _check_shape(self, tensor: np.ndarray) -> np.ndarray:
        arr = np.asarray(tensor, dtype=np.float32)
        if arr.shape != self.shape:
            raise ValueError(f"context shape {self.shape}, tensor {arr.shape}")
        return arr


def snapshot_contexts(contexts: dict) -> dict:
    """Checkpoint a keyed mapping of contexts: ``{key: state_dict()}``.

    Each :meth:`CompressorContext.state_dict` copies its arrays, so the
    snapshot stays valid while the live contexts keep compressing — the
    fault-recovery layer takes one at crash time and restores it when the
    worker rejoins.
    """
    return {key: context.state_dict() for key, context in contexts.items()}


def restore_contexts(contexts: dict, snapshot: dict) -> None:
    """Restore :func:`snapshot_contexts` output into live contexts.

    The key sets must match exactly: a checkpoint from a different tensor
    layout (or scheme) must fail loudly rather than partially restore.
    """
    if set(contexts) != set(snapshot):
        missing = sorted(set(contexts) - set(snapshot))
        extra = sorted(set(snapshot) - set(contexts))
        raise ValueError(
            f"checkpoint does not match contexts (missing keys {missing}, "
            f"unexpected keys {extra})"
        )
    for key, context in contexts.items():
        context.load_state(snapshot[key])


class Compressor(abc.ABC):
    """A compression scheme: factory for contexts plus a stateless decoder.

    Attributes
    ----------
    name:
        Scheme label as it appears in the paper's tables (e.g.
        ``"3LC (s=1.75)"``).
    defers_transmission:
        True when ``compress`` may return ``None`` to skip a step
        (N-local-steps style schedule changers). Such schemes cannot run
        on collectives — a ring hop must carry *something* — so sweeps
        over ring topologies filter on this flag.
    """

    name: str = "abstract"
    defers_transmission: bool = False

    @abc.abstractmethod
    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        """Create per-tensor sender state.

        Parameters
        ----------
        shape:
            Tensor shape the context will transmit.
        key:
            Stream key for stochastic schemes (e.g. ``("push", worker, name)``)
            so that every context draws reproducible, independent randomness.
        """

    @abc.abstractmethod
    def decompress(self, message: WireMessage) -> np.ndarray:
        """Decode a wire message. Receivers carry no cross-step state."""

    def make_bypass_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        """Context for small tensors excluded from lossy compression.

        The small-layer bypass (paper §5.1) skips the *codec*, not the
        transmission schedule: by default small tensors travel as raw
        float32 every step, but schemes that change *when* data is sent
        (N-local-steps) override this so deferral applies to every tensor.
        """
        from repro.compression.float32 import Float32Compressor

        return Float32Compressor().make_context(shape, key=key)

    def decompress_bypass(self, message: WireMessage) -> np.ndarray:
        """Decode a bypass message (raw float32 for every scheme)."""
        from repro.compression.float32 import Float32Compressor

        return Float32Compressor().decompress(message)

    def make_fused_context(
        self, bucket, *, key: tuple[object, ...] = (), lossy: bool = False
    ):
        """Bucket-aware context: one codec call for a whole bucket.

        The fused-bucket hot path concatenates many small tensors into one
        flat buffer and runs a codec once, paying one frame header instead
        of one per tensor. ``lossy=False`` (the exact mode) runs the raw
        float32 *bypass* codec, so fused transmission is bit-identical to
        per-tensor bypass framing; ``lossy=True`` runs the scheme's own
        codec over the concatenated bucket — one shared quantization scale
        (and one error-feedback buffer) per bucket instead of per tensor.
        Deferring schemes compose either way: the fused context defers the
        entire bucket whenever the inner context defers.
        """
        from repro.compression.fusion import FusedBucketContext

        shape = (bucket.total_elements,)
        inner = (
            self.make_context(shape, key=key)
            if lossy
            else self.make_bypass_context(shape, key=key)
        )
        return FusedBucketContext(bucket, inner)

    def make_fused_bypass_context(self, bucket, *, key: tuple[object, ...] = ()):
        """Exact-mode fused context (kept for the historical name)."""
        return self.make_fused_context(bucket, key=key, lossy=False)

    def decompress_fused(self, message, *, lossy: bool = False) -> np.ndarray:
        """Decode a fused frame to the flat bucket (one codec call).

        ``lossy`` must match the plan the sender compressed under — it is
        plan-wide, never per-message, so receivers read it off their own
        copy of the :class:`~repro.compression.fusion.FusionPlan`.
        """
        if lossy:
            return self.decompress(message.inner)
        return self.decompress_bypass(message.inner)

    def decompress_fused_bypass(self, message) -> np.ndarray:
        """Decode an exact-mode fused frame (kept for the historical name)."""
        return self.decompress_fused(message, lossy=False)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name!r})"
