"""Sufficient-factor / low-rank baseline (paper §6, references [40, 41]).

Project ADAM and Poseidon transmit "sufficient factors" — the rank-1
outer-product factors ``u v^T`` that make up a fully-connected layer's
gradient — instead of the full matrix. 3LC's §6 contrasts itself as "a
general tensor compression scheme that can compress gradients and model
deltas for any type of layers"; this baseline exists to exercise exactly
that generality boundary.

In a parameter-server exchange the per-example factors are already summed
into one matrix, so the faithful analogue is a *truncated SVD*: transmit
the top ``rank`` singular triplets of the 2-D state-change tensor and
accumulate the discarded spectrum in an error buffer (the same error-
feedback construction later formalized by PowerSGD). Tensors are reshaped
to 2-D as ``(dim0, rest)``; for 0/1-D tensors (biases, batch-norm
parameters) low-rank factorization is meaningless — §6's generality
critique in action — and the context falls back to raw float32 transmission
of the accumulated value.

Wire format: ``rank`` float32 columns of ``U * S`` followed by ``rank``
float32 rows of ``V^T``, costing ``4 * rank * (rows + cols)`` bytes —
a large saving whenever ``rank << rows*cols/(rows+cols)``.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage

__all__ = ["SufficientFactorCompressor"]


def _matrix_shape(shape: tuple[int, ...]) -> tuple[int, int] | None:
    """2-D view used for factorization, or ``None`` when not factorable."""
    if len(shape) < 2:
        return None
    rows = int(shape[0])
    cols = 1
    for dim in shape[1:]:
        cols *= int(dim)
    if rows < 2 or cols < 2:
        return None
    return rows, cols


class _LowRankContext(CompressorContext):
    def __init__(self, shape: tuple[int, ...], rank: int):
        super().__init__(shape)
        self.rank = rank
        self.matrix_shape = _matrix_shape(self.shape)
        self.buffer = ErrorAccumulationBuffer(self.shape)

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        accumulated = self.buffer.add(arr)
        if self.matrix_shape is None:
            # Generality fallback: biases and scalars go uncompressed.
            payload = accumulated.astype("<f4").tobytes()
            message = WireMessage(
                codec_id=CodecId.LOW_RANK,
                shape=arr.shape,
                payload=payload,
                scalars=(0.0,),  # rank 0 marks the raw-float32 fallback
                dtype=np.float32,
            )
            reconstruction = accumulated.astype(np.float32)
            self.buffer.subtract(reconstruction)
            return CompressionResult(message, reconstruction)

        rows, cols = self.matrix_shape
        matrix = accumulated.reshape(rows, cols)
        rank = min(self.rank, rows, cols)
        u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        us = (u[:, :rank] * s[:rank]).astype("<f4")
        vt_r = vt[:rank].astype("<f4")
        message = WireMessage(
            codec_id=CodecId.LOW_RANK,
            shape=arr.shape,
            payload=us.tobytes() + vt_r.tobytes(),
            scalars=(float(rank),),
            dtype=np.float32,
        )
        reconstruction = (
            (us.astype(np.float32) @ vt_r.astype(np.float32))
            .reshape(self.shape)
            .astype(np.float32)
        )
        self.buffer.subtract(reconstruction)
        return CompressionResult(message, reconstruction)

    def residual_norm(self) -> float:
        return self.buffer.l2_norm()

    def state_dict(self) -> dict:
        return {"residual": self.buffer.residual.copy()}

    def load_state(self, state: dict) -> None:
        self.buffer.load_residual(self._checked_residual(state))


class SufficientFactorCompressor(Compressor):
    """``sufficient factors (rank r)``: truncated-SVD factor transmission.

    Parameters
    ----------
    rank:
        Number of singular triplets to transmit per 2-D tensor. Rank 1 is
        the classical sufficient-factor broadcast; higher ranks trade
        traffic for fidelity.
    """

    def __init__(self, rank: int = 1):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = int(rank)
        self.name = f"sufficient factors (rank {rank})"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _LowRankContext(shape, self.rank)

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.LOW_RANK:
            raise ValueError(f"not a low-rank message: {message.codec_id!r}")
        (rank_f,) = message.scalars
        rank = int(rank_f)
        if rank == 0:
            flat = np.frombuffer(message.payload, dtype="<f4")
            if flat.size != message.element_count:
                raise ValueError("raw fallback payload size mismatch")
            return flat.reshape(message.shape).astype(np.float32)
        matrix_shape = _matrix_shape(message.shape)
        if matrix_shape is None:
            raise ValueError("factored message for a non-factorable shape")
        rows, cols = matrix_shape
        expected = 4 * rank * (rows + cols)
        if len(message.payload) != expected:
            raise ValueError(
                f"low-rank payload is {len(message.payload)} bytes, "
                f"expected {expected}"
            )
        us = np.frombuffer(message.payload[: 4 * rank * rows], dtype="<f4").reshape(
            rows, rank
        )
        vt = np.frombuffer(message.payload[4 * rank * rows :], dtype="<f4").reshape(
            rank, cols
        )
        out = (us.astype(np.float32) @ vt.astype(np.float32)).reshape(message.shape)
        return out.astype(np.float32)
