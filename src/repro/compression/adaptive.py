"""Adaptive sparsity-multiplier control for 3LC (extension of §5.4).

The paper leaves ``s`` as a static, manually chosen knob and observes
(Fig. 9) that compressed sizes drift over training as gradient variance
changes. This extension closes the loop: each compression context adjusts
its own ``s`` after every step so that the *measured* wire cost tracks a
target bits-per-value budget — the natural interface for the metered-link
deployments §5.4 motivates ("useful for metered and/or highly
bandwidth-constrained network connections").

The controller is a clamped proportional law in ``s``:

    s ← clip(s + gain * (measured_bits - target_bits), 1.0, S_MAX)

More zeros (higher ``s``) monotonically shrinks the zero-run-encoded
output, so the loop is stable for small gains; the clamp enforces the
paper's convergence condition ``1 <= s < 2`` (§3.1). Because every wire
message is a self-describing standard 3LC frame, receivers need no
knowledge of the sender's controller state — the point-to-point property
(§3) is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.codec import CompressionContext as CoreContext
from repro.core.codec import ThreeLCCodec
from repro.core.packets import WireMessage

__all__ = ["AdaptiveThreeLCCompressor", "S_MIN", "S_MAX"]

#: Clamp bounds for the controlled sparsity multiplier. The upper bound
#: stays strictly below 2 so the §3.1 error bound M/2 < max|T| holds.
S_MIN = 1.0
S_MAX = 1.99


class _AdaptiveContext(CompressorContext):
    def __init__(
        self, shape: tuple[int, ...], target_bits: float, gain: float, initial_s: float
    ):
        super().__init__(shape)
        self.target_bits = target_bits
        self.gain = gain
        self._s = initial_s
        # The error buffer must survive s adjustments, so it lives in one
        # long-lived core context whose codec we swap each step.
        self._core = CoreContext(shape, ThreeLCCodec(initial_s))
        self.history: list[tuple[float, float]] = []  # (s used, bits measured)

    @property
    def sparsity_multiplier(self) -> float:
        """The controller's current ``s``."""
        return self._s

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        self._core.codec = ThreeLCCodec(self._s)
        result = self._core.compress(arr)
        measured = result.bits_per_value()
        self.history.append((self._s, measured))
        self._s = float(
            np.clip(self._s + self.gain * (measured - self.target_bits), S_MIN, S_MAX)
        )
        return result

    def residual_norm(self) -> float:
        return self._core.residual_norm()

    def state_dict(self) -> dict:
        state = self._core.state_dict()
        state["s"] = self._s
        return state

    def load_state(self, state: dict) -> None:
        state = dict(state)
        self._s = float(np.clip(state.pop("s"), S_MIN, S_MAX))
        self._core.load_state(state)


class AdaptiveThreeLCCompressor(Compressor):
    """``3LC (adaptive)``: feedback control of ``s`` toward a bit budget.

    Parameters
    ----------
    target_bits:
        Desired wire bits per state change (Table 2 spans 0.2-0.812).
    gain:
        Proportional gain in ``s`` units per bit of budget error. The
        default moves ``s`` by at most ~0.08 per step (measured sizes stay
        within ~1.6 bits of target), fast enough to track Fig. 9's drift
        and small enough not to oscillate.
    initial_s:
        Starting multiplier before any measurement arrives.
    """

    def __init__(
        self, target_bits: float = 0.5, *, gain: float = 0.05, initial_s: float = 1.5
    ):
        if target_bits <= 0:
            raise ValueError(f"target_bits must be > 0, got {target_bits!r}")
        if gain <= 0:
            raise ValueError(f"gain must be > 0, got {gain!r}")
        if not (S_MIN <= initial_s <= S_MAX):
            raise ValueError(
                f"initial_s must be in [{S_MIN}, {S_MAX}], got {initial_s!r}"
            )
        self.target_bits = float(target_bits)
        self.gain = float(gain)
        self.initial_s = float(initial_s)
        self.name = f"3LC (adaptive, {target_bits:g} bits)"
        self._decoder = ThreeLCCodec(1.0)

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _AdaptiveContext(shape, self.target_bits, self.gain, self.initial_s)

    def decompress(self, message: WireMessage) -> np.ndarray:
        # Frames are standard 3LC; decoding never depends on the sender's s.
        return self._decoder.decompress(message)
