"""Deep Gradient Compression baseline (paper §6, reference [25]).

Lin et al.'s DGC pushes sparsification to 0.1% of entries and recovers the
lost accuracy with four ML-algorithm modifications that 3LC's §6 explicitly
contrasts itself against ("recovering accuracy necessitates modifying
machine learning algorithms, which reduces their generality"):

* **Momentum correction** — the compressor carries its own momentum
  accumulator ``u`` and velocity ``v`` so that sparsified updates still
  follow momentum-SGD dynamics: ``u = m*u + g``, ``v = v + u``, transmit
  the top entries of ``v``.
* **Momentum factor masking** — both ``u`` and ``v`` are zeroed at the
  transmitted coordinates, preventing stale momentum from re-applying
  already-sent updates.
* **Gradient clipping** — the local gradient is norm-clipped *before*
  accumulation to bound the staleness-amplified variance.
* **Warmup scheduling** — sparsity ramps exponentially (DGC uses
  75% → 93.75% → 98.4% → 99.6% → 99.9% over the first epochs), so early
  training communicates densely.

The reproduction implements all four inside the compression context; the
distributed substrate remains unmodified, which mirrors how DGC deploys
(the trick rides inside the gradient exchange). Note the generality cost
the paper highlights: momentum correction is meaningful only for gradient
pushes, so model-delta pulls should use a plain sparsifier — the cluster's
pull direction uses this class with ``momentum=0``, which degrades it to
top-k with warmup.

Wire format: 32-bit coordinate indices plus float32 values. At DGC's 0.1%
density, indices are far cheaper than the 1-bit-per-entry bitmap the
25%/5% sparsifiers use (crossover at 1/32 density).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.compression.topk import sampled_threshold
from repro.core.packets import CodecId, WireMessage
from repro.utils.seeding import derive_rng

__all__ = ["DGCCompressor", "WarmupSchedule"]


class WarmupSchedule:
    """Exponential sparsity ramp from ``initial`` to ``final`` density.

    Parameters
    ----------
    initial:
        Fraction of entries transmitted at step 0 (DGC: 0.25).
    final:
        Fraction transmitted after warmup (DGC: 0.001).
    warmup_steps:
        Number of steps over which the transmitted fraction decays
        geometrically from ``initial`` to ``final``.
    """

    def __init__(self, initial: float, final: float, warmup_steps: int):
        if not (0.0 < final <= initial <= 1.0):
            raise ValueError(
                f"need 0 < final <= initial <= 1, got {initial!r}, {final!r}"
            )
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
        self.initial = float(initial)
        self.final = float(final)
        self.warmup_steps = int(warmup_steps)

    def fraction_at(self, step: int) -> float:
        """Transmitted fraction at training step ``step`` (0-based)."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        if self.warmup_steps == 0 or step >= self.warmup_steps:
            return self.final
        decay = (self.final / self.initial) ** (step / self.warmup_steps)
        return self.initial * decay


class _DGCContext(CompressorContext):
    def __init__(
        self,
        shape: tuple[int, ...],
        schedule: WarmupSchedule,
        momentum: float,
        clip_norm: float | None,
        rng: np.random.Generator,
    ):
        super().__init__(shape)
        self.schedule = schedule
        self.momentum = momentum
        self.clip_norm = clip_norm
        self.rng = rng
        self._u = np.zeros(shape, dtype=np.float32)  # momentum accumulator
        self._v = np.zeros(shape, dtype=np.float32)  # velocity (unsent sum)
        self._step = 0

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        grad = self._check_shape(tensor)
        if self.clip_norm is not None:
            norm = float(np.linalg.norm(grad))
            if norm > self.clip_norm:
                grad = grad * np.float32(self.clip_norm / norm)
        # Momentum correction: velocity accumulates *momentum-corrected*
        # gradients, not raw ones.
        self._u = self.momentum * self._u + grad
        self._v += self._u
        fraction = self.schedule.fraction_at(self._step)
        self._step += 1

        magnitudes = np.abs(self._v)
        threshold = sampled_threshold(magnitudes, fraction, self.rng)
        selected = magnitudes >= threshold
        if threshold == 0.0:
            selected &= self._v != 0
        flat = selected.reshape(-1)
        indices = np.flatnonzero(flat).astype("<u4")
        values = self._v.reshape(-1)[indices].astype("<f4")
        message = WireMessage(
            codec_id=CodecId.DGC_SPARSE,
            shape=grad.shape,
            payload=indices.tobytes() + values.tobytes(),
            dtype=np.float32,
        )
        reconstruction = np.where(selected, self._v, np.float32(0.0)).astype(
            np.float32
        )
        # Momentum factor masking: transmitted coordinates restart both the
        # velocity and the momentum accumulator.
        self._v[selected] = 0.0
        self._u[selected] = 0.0
        return CompressionResult(message, reconstruction)

    def residual_norm(self) -> float:
        return float(np.linalg.norm(self._v))

    def state_dict(self) -> dict:
        return {
            "u": self._u.copy(),
            "v": self._v.copy(),
            "step": self._step,
            "rng": self.rng.bit_generator.state,
        }

    def load_state(self, state: dict) -> None:
        self._u = self._checked_residual(state, "u")
        self._v = self._checked_residual(state, "v")
        self._step = int(state["step"])
        self.rng.bit_generator.state = state["rng"]


class DGCCompressor(Compressor):
    """``DGC (0.1%)``: aggressive sparsification with accuracy compensation.

    Parameters
    ----------
    fraction:
        Post-warmup transmitted fraction (DGC: 0.001).
    momentum:
        Momentum-correction coefficient; use the local optimizer's momentum
        (DGC and this repo's trainer both default to 0.9). Zero disables
        correction (appropriate for model-delta pulls).
    warmup_steps:
        Length of the exponential sparsity ramp.
    initial_fraction:
        Transmitted fraction at the start of warmup (DGC: 0.25).
    clip_norm:
        L2 clipping bound applied to each incoming gradient, ``None`` to
        disable.
    """

    def __init__(
        self,
        fraction: float = 0.001,
        *,
        momentum: float = 0.9,
        warmup_steps: int = 40,
        initial_fraction: float = 0.25,
        clip_norm: float | None = None,
        seed: int = 0,
    ):
        # A final fraction denser than the ramp start makes warmup moot.
        self.schedule = WarmupSchedule(
            max(initial_fraction, fraction), fraction, warmup_steps
        )
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum!r}")
        self.fraction = float(fraction)
        self.momentum = float(momentum)
        self.clip_norm = None if clip_norm is None else float(clip_norm)
        self.seed = int(seed)
        self.name = f"DGC ({fraction:.2%})"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        # Momentum correction is a gradient-push concept; pull contexts
        # (key starts with "pull" in the cluster) degrade to warmup top-k.
        momentum = 0.0 if key and key[0] == "pull" else self.momentum
        return _DGCContext(
            self.shape_checked(shape),
            self.schedule,
            momentum,
            self.clip_norm,
            derive_rng(self.seed, "dgc", self.fraction, *key),
        )

    @staticmethod
    def shape_checked(shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = tuple(int(d) for d in shape)
        count = int(np.prod(shape)) if shape else 1
        if count >= 2**32:
            raise ValueError("tensor too large for 32-bit DGC indices")
        return shape

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.DGC_SPARSE:
            raise ValueError(f"not a DGC message: {message.codec_id!r}")
        count = message.element_count
        if len(message.payload) % 8:
            raise ValueError("DGC payload length must be a multiple of 8")
        n = len(message.payload) // 8
        indices = np.frombuffer(message.payload[: 4 * n], dtype="<u4")
        values = np.frombuffer(message.payload[4 * n :], dtype="<f4")
        if indices.size and int(indices.max()) >= count:
            raise ValueError("DGC index out of range (corrupted frame?)")
        out = np.zeros(count, dtype=np.float32)
        out[indices] = values
        return out.reshape(message.shape)
