"""Stochastic 3-value quantization + quartic encoding (``Stoch 3-value + QE``).

The TernGrad-like baseline of §5.1: unbiased stochastic ternary quantization
(without gradient clipping) followed by *our* quartic encoding, so it
transmits 1.6 bits per value — tighter than TernGrad's own 2-bit encoding.

Deliberately **no error feedback**: the paper reports that combining error
accumulation buffers with stochastic quantization made training fail to
converge (§3.1, "Alternative quantization techniques"), and evaluates this
design without them. Also no ZRE, matching the compared design's name.

Each context derives its own PCG64 stream from the context key so that the
randomness is reproducible and independent across tensors/workers.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.packets import CodecId, WireMessage
from repro.core.quantization import QuantizedTensor, dequantize_3value, quantize_stochastic_ternary
from repro.core.quartic import quartic_decode, quartic_encode
from repro.utils.seeding import derive_rng

__all__ = ["StochasticTernaryCompressor", "clip_gradient"]


def clip_gradient(
    tensor: np.ndarray, clip_factor: float
) -> np.ndarray:
    """TernGrad's layer-wise gradient clipping (Wen et al. §4.1).

    Clamps each value to ``clip_factor`` standard deviations of the tensor.
    Ternary quantization's scale is ``max|T|``; one outlier therefore
    collapses every other value's quantization resolution, and clipping
    restores it. The §5.1 baseline omits this ("without gradient
    clipping") — the ablation in ``benchmarks/bench_ablation.py`` measures
    what that omission costs.
    """
    if clip_factor <= 0:
        raise ValueError(f"clip_factor must be > 0, got {clip_factor!r}")
    arr = np.asarray(tensor, dtype=np.float32)
    sigma = float(np.std(arr))
    if sigma == 0.0:
        return arr
    bound = np.float32(clip_factor * sigma)
    return np.clip(arr, -bound, bound)


class _StochTernaryContext(CompressorContext):
    def __init__(
        self,
        shape: tuple[int, ...],
        rng: np.random.Generator,
        clip_factor: float | None,
    ):
        super().__init__(shape)
        self.rng = rng
        self.clip_factor = clip_factor

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        if self.clip_factor is not None:
            arr = clip_gradient(arr, self.clip_factor)
        quantized = quantize_stochastic_ternary(arr, self.rng)
        encoded = quartic_encode(quantized.values)
        message = WireMessage(
            codec_id=CodecId.STOCHASTIC_TERNARY_QE,
            shape=arr.shape,
            payload=encoded.tobytes(),
            scalars=(quantized.scale,),
            dtype=np.float32,
        )
        return CompressionResult(message, dequantize_3value(quantized))

    def state_dict(self) -> dict:
        return {"rng": self.rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state["rng"]


class StochasticTernaryCompressor(Compressor):
    """``Stoch 3-value + QE``: unbiased ternary quantization, 1.6 bits/value.

    Parameters
    ----------
    seed:
        Root seed for per-context stochastic rounding streams.
    clip_factor:
        ``None`` (default) reproduces the paper's §5.1 baseline, which
        omits TernGrad's gradient clipping; a positive value (TernGrad
        uses 2.5) enables layer-wise sigma clipping before quantization.
    """

    def __init__(self, seed: int = 0, *, clip_factor: float | None = None):
        self.seed = int(seed)
        if clip_factor is not None and clip_factor <= 0:
            raise ValueError(f"clip_factor must be > 0, got {clip_factor!r}")
        self.clip_factor = clip_factor
        self.name = (
            "Stoch 3-value + QE"
            if clip_factor is None
            else f"Stoch 3-value + QE (clip {clip_factor:g})"
        )

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _StochTernaryContext(
            shape, derive_rng(self.seed, "stoch-ternary", *key), self.clip_factor
        )

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.STOCHASTIC_TERNARY_QE:
            raise ValueError(
                f"not a stochastic-ternary message: {message.codec_id!r}"
            )
        encoded = np.frombuffer(message.payload, dtype=np.uint8)
        values = quartic_decode(encoded, message.element_count, message.shape)
        (scale,) = message.scalars
        return dequantize_3value(QuantizedTensor(values, scale))
