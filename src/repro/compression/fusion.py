"""Fused-bucket compression: many small tensors, one codec call.

The per-tensor compression contexts of the paper's design are ideal for the
few large conv/FC tensors that dominate a DNN's bytes, but a model also has
*many* tiny tensors (batch-norm scale/shift, biases) that each pay a full
frame header and a full Python round-trip through the codec. Gradient-fusion
systems solve this by flattening and concatenating small tensors into fixed
capacity buckets and compressing each bucket in one shot; this module brings
that hot path to the reproduction.

A :class:`FusionPlan` deterministically assigns every below-threshold tensor
to a :class:`Bucket` (both sides of a link derive the identical plan from the
parameter list, so bucket membership never travels on the wire). Plans are
**partition-aware**: :func:`build_fusion_plan` accepts a ``partition``
function mapping each tensor name to a destination key — a shard of a
:class:`~repro.distributed.sharding.ShardedParameterService`, the cross-rack
uplink of a hierarchical exchange — and never lets a bucket span two keys,
so one fused frame always has exactly one destination on the wire.

A :class:`FusedBucketContext` owns one inner
:class:`~repro.compression.base.CompressorContext` of the bucket's flat shape
and compresses the concatenated bucket with a single codec call, framing the
result as one :class:`~repro.core.packets.FusedWireMessage` — one header and
one CRC instead of dozens.

Two codec modes exist per plan:

* **exact** (``lossy=False``, the default) — the inner context is the raw
  float32 *bypass* codec, so fused and per-tensor transmission reconstruct
  bit-identical values; only framing and call count change.
* **lossy** (``lossy=True``) — the inner context is the scheme's own lossy
  codec applied once to the whole concatenated bucket, i.e. one *shared*
  quantization scale per bucket instead of one per tensor. Cheaper on the
  wire; the accuracy cost is measured in ``benchmarks/bench_fusion.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.packets import FusedWireMessage

__all__ = [
    "Bucket",
    "FusionPlan",
    "build_fusion_plan",
    "FusedCompressionResult",
    "FusedBucketContext",
    "compress_fused_batch",
    "split_bucket",
]


@dataclass(frozen=True)
class Bucket:
    """One fused bucket: an ordered set of tensors sharing a frame.

    ``group`` is the partition key every member maps to (``None`` for
    unpartitioned plans): the single wire destination this bucket's frames
    travel to — a shard index, a cross-rack uplink label. Hashable so
    services can key per-destination routing on it.
    """

    index: int
    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    group: object | None = None

    def __post_init__(self) -> None:
        if len(self.names) != len(self.shapes):
            raise ValueError("names and shapes must align")
        if not self.names:
            raise ValueError("a bucket needs at least one tensor")

    # Cached: these sit on the per-step hot path (one lookup per tensor per
    # compress/split call), and a frozen dataclass recomputing them via
    # numpy reductions dominated the fused path's profile.
    @cached_property
    def total_elements(self) -> int:
        return sum(math.prod(s) for s in self.shapes)

    @cached_property
    def offsets(self) -> tuple[tuple[int, int], ...]:
        """Flat ``(start, stop)`` slice of each tensor within the bucket."""
        bounds = []
        start = 0
        for shape in self.shapes:
            count = math.prod(shape)
            bounds.append((start, start + count))
            start += count
        return tuple(bounds)


@dataclass(frozen=True)
class FusionPlan:
    """Deterministic assignment of small tensors to fused buckets.

    ``lossy`` selects the bucket codec mode (see the module docstring);
    every context and decode call derived from the plan follows it, so the
    flag travels with the plan instead of being threaded separately through
    workers, servers, and shards.

    Bucket indices are global identifiers, not positions: a
    :class:`~repro.distributed.sharding.ShardedParameterService` hands each
    shard a sub-plan holding only its buckets *with their original
    indices*, so push/pull dicts keyed by index merge without translation.
    Use :meth:`bucket` to resolve an index.
    """

    buckets: tuple[Bucket, ...]
    lossy: bool = False

    @property
    def fused_names(self) -> frozenset[str]:
        return frozenset(n for b in self.buckets for n in b.names)

    @cached_property
    def _by_index(self) -> dict[int, Bucket]:
        return {b.index: b for b in self.buckets}

    def bucket(self, index: int) -> Bucket:
        """Resolve a (global) bucket index."""
        try:
            return self._by_index[index]
        except KeyError:
            raise KeyError(f"plan has no bucket with index {index}") from None

    def restrict(self, indices) -> "FusionPlan | None":
        """Sub-plan holding only ``indices``, original indices preserved.

        Returns ``None`` when the restriction is empty, matching the
        "no plan" convention everywhere else.
        """
        wanted = set(indices)
        kept = tuple(b for b in self.buckets if b.index in wanted)
        if not kept:
            return None
        return FusionPlan(kept, lossy=self.lossy)

    def __len__(self) -> int:
        return len(self.buckets)


def build_fusion_plan(
    shapes: dict[str, tuple[int, ...]],
    *,
    threshold: int,
    bucket_elements: int,
    partition=None,
    lossy: bool = False,
    boundaries: frozenset[str] | None = None,
) -> FusionPlan:
    """Group every below-threshold tensor into capacity-bounded buckets.

    Tensors are visited in dict (= parameter registration) order, so every
    node derives the identical plan. A bucket closes when adding the next
    tensor would exceed ``bucket_elements`` (a single oversized tensor still
    gets its own bucket, though the threshold normally prevents that) — or
    when the next tensor's ``partition(name)`` key differs from the open
    bucket's, so no bucket ever spans two wire destinations. Partition keys
    must be hashable; ``partition=None`` means a single unpartitioned group.

    ``boundaries`` names tensors that force-close the open bucket before
    they are packed — explicit per-layer bucket boundaries the plan tuner
    searches over. Names not present in ``shapes`` (or above threshold)
    are ignored, so a boundary set transfers across models.
    """
    if bucket_elements < 1:
        raise ValueError(f"bucket_elements must be >= 1, got {bucket_elements}")
    # Group by destination first (first-appearance order), then pack each
    # group independently: two tensors that interleave in registration
    # order but live on different shards still pack densely within their
    # own destination's buckets.
    grouped: dict[object, list[tuple[str, tuple[int, ...]]]] = {}
    for name, shape in shapes.items():
        size = int(np.prod(shape)) if shape else 1
        if size >= threshold:
            continue
        key = partition(name) if partition is not None else None
        grouped.setdefault(key, []).append(
            (name, tuple(int(d) for d in shape))
        )

    buckets: list[Bucket] = []
    for key, members in grouped.items():
        names: list[str] = []
        bucket_shapes: list[tuple[int, ...]] = []
        used = 0

        def close() -> None:
            nonlocal names, bucket_shapes, used
            if names:
                buckets.append(
                    Bucket(
                        len(buckets), tuple(names), tuple(bucket_shapes), key
                    )
                )
                names, bucket_shapes, used = [], [], 0

        for name, shape in members:
            size = math.prod(shape) if shape else 1
            if names and (
                used + size > bucket_elements
                or (boundaries is not None and name in boundaries)
            ):
                close()
            names.append(name)
            bucket_shapes.append(shape)
            used += size
        close()
    return FusionPlan(tuple(buckets), lossy=lossy)


def split_bucket(flat: np.ndarray, bucket: Bucket) -> dict[str, np.ndarray]:
    """Slice a decoded flat bucket back into named, shaped tensors."""
    arr = np.asarray(flat).reshape(-1)
    if arr.size != bucket.total_elements:
        raise ValueError(
            f"bucket {bucket.index} expects {bucket.total_elements} elements, "
            f"got {arr.size}"
        )
    out: dict[str, np.ndarray] = {}
    for name, shape, (lo, hi) in zip(bucket.names, bucket.shapes, bucket.offsets):
        out[name] = arr[lo:hi].reshape(shape)
    return out


class FusedCompressionResult:
    """Output of one fused-bucket compression call."""

    __slots__ = ("message", "parts")

    def __init__(self, message: FusedWireMessage, parts: dict[str, np.ndarray]):
        self.message = message
        #: Per-tensor reconstruction (what the receiver will decode).
        self.parts = parts

    @property
    def wire_size(self) -> int:
        return self.message.wire_size


class FusedBucketContext:
    """Bucket-aware compression context: one codec call per bucket per step.

    Wraps an inner per-"tensor" context whose tensor is the flat bucket, so
    cross-step state (error buffers, deferral counters, a lossy codec's
    error feedback) composes unchanged. A ``None`` from the inner context
    (a deferring scheme) defers the whole bucket, matching what the
    per-tensor path would have done for each member individually.
    """

    def __init__(self, bucket: Bucket, inner) -> None:
        self.bucket = bucket
        self.inner = inner
        if tuple(inner.shape) != (bucket.total_elements,):
            raise ValueError(
                f"inner context shape {inner.shape} != bucket flat shape "
                f"({bucket.total_elements},)"
            )

    def compress(self, tensors: dict[str, np.ndarray]) -> FusedCompressionResult | None:
        """Concatenate the bucket members and compress them in one call."""
        flat = np.concatenate(
            [
                np.asarray(tensors[name], dtype=np.float32).reshape(-1)
                for name in self.bucket.names
            ]
        )
        result = self.inner.compress(flat)
        if result is None:
            return None
        message = FusedWireMessage(inner=result.message, shapes=self.bucket.shapes)
        return FusedCompressionResult(
            message, split_bucket(result.reconstruction, self.bucket)
        )

    def residual_norm(self) -> float:
        return self.inner.residual_norm()

    def state_dict(self) -> dict:
        return self.inner.state_dict()

    def load_state(self, state: dict) -> None:
        self.inner.load_state(state)


def compress_fused_batch(items) -> list[FusedCompressionResult | None]:
    """Compress many ``(FusedBucketContext, tensors)`` pairs in one pass.

    Semantically ``[ctx.compress(tensors) for ctx, tensors in items]``, but
    every bucket whose inner context wraps a 3LC core funnels into a single
    vectorized codec call (:func:`repro.core.codec.compress_context_batch`)
    — one quantization and one quartic pass across all buckets of the step
    instead of one per bucket. Buckets with other inner codecs (the exact
    float32 bypass, deferring schemes) fall back to their own
    ``compress``; results come back in input order, bit-identical to the
    per-bucket path either way.
    """
    from repro.core.codec import CompressionContext as CoreContext
    from repro.core.codec import ThreeLCCodec, compress_context_batch

    items = list(items)
    results: list[FusedCompressionResult | None] = [None] * len(items)
    batched: list[tuple[int, CoreContext, np.ndarray]] = []
    for pos, (ctx, tensors) in enumerate(items):
        flat = np.concatenate(
            [
                np.asarray(tensors[name], dtype=np.float32).reshape(-1)
                for name in ctx.bucket.names
            ]
        )
        core = getattr(ctx.inner, "core", None)
        if isinstance(core, CoreContext) and isinstance(core.codec, ThreeLCCodec):
            batched.append((pos, core, flat))
        else:
            inner_result = ctx.inner.compress(flat)
            if inner_result is not None:
                results[pos] = FusedCompressionResult(
                    FusedWireMessage(
                        inner=inner_result.message, shapes=ctx.bucket.shapes
                    ),
                    split_bucket(inner_result.reconstruction, ctx.bucket),
                )
    if batched:
        core_results = compress_context_batch(
            [(core, flat) for _, core, flat in batched]
        )
        for (pos, _, _), inner_result in zip(batched, core_results):
            bucket = items[pos][0].bucket
            results[pos] = FusedCompressionResult(
                FusedWireMessage(inner=inner_result.message, shapes=bucket.shapes),
                split_bucket(inner_result.reconstruction, bucket),
            )
    return results
