"""Fused-bucket compression: many small tensors, one codec call.

The per-tensor compression contexts of the paper's design are ideal for the
few large conv/FC tensors that dominate a DNN's bytes, but a model also has
*many* tiny tensors (batch-norm scale/shift, biases) that each pay a full
frame header and a full Python round-trip through the codec. Gradient-fusion
systems solve this by flattening and concatenating small tensors into fixed
capacity buckets and compressing each bucket in one shot; this module brings
that hot path to the reproduction.

A :class:`FusionPlan` deterministically assigns every below-threshold tensor
to a :class:`Bucket` (both sides of a link derive the identical plan from the
parameter list, so bucket membership never travels on the wire). A
:class:`FusedBucketContext` owns one inner
:class:`~repro.compression.base.CompressorContext` of the bucket's flat shape
and compresses the concatenated bucket with a single codec call, framing the
result as one :class:`~repro.core.packets.FusedWireMessage` — one header and
one CRC instead of dozens.

Fusion is applied to the small-tensor *bypass* path (raw float32 codec), so
it is numerically exact: fused and per-tensor transmission reconstruct
bit-identical values, only framing and call count change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.packets import FusedWireMessage

__all__ = [
    "Bucket",
    "FusionPlan",
    "build_fusion_plan",
    "FusedCompressionResult",
    "FusedBucketContext",
    "split_bucket",
]


@dataclass(frozen=True)
class Bucket:
    """One fused bucket: an ordered set of tensors sharing a frame."""

    index: int
    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.shapes):
            raise ValueError("names and shapes must align")
        if not self.names:
            raise ValueError("a bucket needs at least one tensor")

    # Cached: these sit on the per-step hot path (one lookup per tensor per
    # compress/split call), and a frozen dataclass recomputing them via
    # numpy reductions dominated the fused path's profile.
    @cached_property
    def total_elements(self) -> int:
        return sum(math.prod(s) for s in self.shapes)

    @cached_property
    def offsets(self) -> tuple[tuple[int, int], ...]:
        """Flat ``(start, stop)`` slice of each tensor within the bucket."""
        bounds = []
        start = 0
        for shape in self.shapes:
            count = math.prod(shape)
            bounds.append((start, start + count))
            start += count
        return tuple(bounds)


@dataclass(frozen=True)
class FusionPlan:
    """Deterministic assignment of small tensors to fused buckets."""

    buckets: tuple[Bucket, ...]

    @property
    def fused_names(self) -> frozenset[str]:
        return frozenset(n for b in self.buckets for n in b.names)

    def __len__(self) -> int:
        return len(self.buckets)


def build_fusion_plan(
    shapes: dict[str, tuple[int, ...]],
    *,
    threshold: int,
    bucket_elements: int,
) -> FusionPlan:
    """Group every below-threshold tensor into capacity-bounded buckets.

    Tensors are visited in dict (= parameter registration) order, so every
    node derives the identical plan. A bucket closes when adding the next
    tensor would exceed ``bucket_elements`` (a single oversized tensor still
    gets its own bucket, though the threshold normally prevents that).
    """
    if bucket_elements < 1:
        raise ValueError(f"bucket_elements must be >= 1, got {bucket_elements}")
    buckets: list[Bucket] = []
    names: list[str] = []
    bucket_shapes: list[tuple[int, ...]] = []
    used = 0

    def close() -> None:
        nonlocal names, bucket_shapes, used
        if names:
            buckets.append(
                Bucket(len(buckets), tuple(names), tuple(bucket_shapes))
            )
            names, bucket_shapes, used = [], [], 0

    for name, shape in shapes.items():
        size = int(np.prod(shape)) if shape else 1
        if size >= threshold:
            continue
        if names and used + size > bucket_elements:
            close()
        names.append(name)
        bucket_shapes.append(tuple(int(d) for d in shape))
        used += size
    close()
    return FusionPlan(tuple(buckets))


def split_bucket(flat: np.ndarray, bucket: Bucket) -> dict[str, np.ndarray]:
    """Slice a decoded flat bucket back into named, shaped tensors."""
    arr = np.asarray(flat).reshape(-1)
    if arr.size != bucket.total_elements:
        raise ValueError(
            f"bucket {bucket.index} expects {bucket.total_elements} elements, "
            f"got {arr.size}"
        )
    out: dict[str, np.ndarray] = {}
    for name, shape, (lo, hi) in zip(bucket.names, bucket.shapes, bucket.offsets):
        out[name] = arr[lo:hi].reshape(shape)
    return out


class FusedCompressionResult:
    """Output of one fused-bucket compression call."""

    __slots__ = ("message", "parts")

    def __init__(self, message: FusedWireMessage, parts: dict[str, np.ndarray]):
        self.message = message
        #: Per-tensor reconstruction (what the receiver will decode).
        self.parts = parts

    @property
    def wire_size(self) -> int:
        return self.message.wire_size


class FusedBucketContext:
    """Bucket-aware compression context: one codec call per bucket per step.

    Wraps an inner per-"tensor" context whose tensor is the flat bucket, so
    cross-step state (error buffers, deferral counters) composes unchanged.
    A ``None`` from the inner context (a deferring scheme) defers the whole
    bucket, matching what the per-tensor path would have done for each
    member individually.
    """

    def __init__(self, bucket: Bucket, inner) -> None:
        self.bucket = bucket
        self.inner = inner
        if tuple(inner.shape) != (bucket.total_elements,):
            raise ValueError(
                f"inner context shape {inner.shape} != bucket flat shape "
                f"({bucket.total_elements},)"
            )

    def compress(self, tensors: dict[str, np.ndarray]) -> FusedCompressionResult | None:
        """Concatenate the bucket members and compress them in one call."""
        flat = np.concatenate(
            [
                np.asarray(tensors[name], dtype=np.float32).reshape(-1)
                for name in self.bucket.names
            ]
        )
        result = self.inner.compress(flat)
        if result is None:
            return None
        message = FusedWireMessage(inner=result.message, shapes=self.bucket.shapes)
        return FusedCompressionResult(
            message, split_bucket(result.reconstruction, self.bucket)
        )

    def residual_norm(self) -> float:
        return self.inner.residual_norm()

    def state_dict(self) -> dict:
        return self.inner.state_dict()

    def load_state(self, state: dict) -> None:
        self.inner.load_state(state)
