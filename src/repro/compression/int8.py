"""8-bit integer quantization baseline (paper §5.1, ``8-bit int``).

Approximates the TPU-style internal 8-bit quantization the paper compares
against: symmetric linear quantization onto 255 distinct values
``[-127, 127]`` (−128 unused) with scale ``max(|T|) / 127``. Like the
paper's version it applies no error feedback — at 8 bits the per-step
quantization error is small enough that accuracy is essentially unaffected
(Table 1: −0.04%).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.packets import CodecId, WireMessage

__all__ = ["Int8Compressor", "INT8_LEVELS"]

#: Largest quantized magnitude: values span [-127, 127].
INT8_LEVELS = 127


class _Int8Context(CompressorContext):
    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        max_mag = float(np.max(np.abs(arr))) if arr.size else 0.0
        if max_mag == 0.0:
            quantized = np.zeros(arr.shape, dtype=np.int8)
            scale = 0.0
        else:
            scale = max_mag / INT8_LEVELS
            quantized = np.clip(
                np.rint(arr / scale), -INT8_LEVELS, INT8_LEVELS
            ).astype(np.int8)
        message = WireMessage(
            codec_id=CodecId.INT8,
            shape=arr.shape,
            payload=quantized.tobytes(),
            scalars=(scale,),
            dtype=np.float32,
        )
        reconstruction = (quantized.astype(np.float32) * np.float32(scale)).astype(
            np.float32
        )
        return CompressionResult(message, reconstruction)


class Int8Compressor(Compressor):
    """``8-bit int``: 255-level symmetric linear quantization."""

    name = "8-bit int"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _Int8Context(shape)

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.INT8:
            raise ValueError(f"not an int8 message: {message.codec_id!r}")
        quantized = np.frombuffer(message.payload, dtype=np.int8)
        if quantized.size != message.element_count:
            raise ValueError("payload size mismatch")
        (scale,) = message.scalars
        return (
            quantized.reshape(message.shape).astype(np.float32) * np.float32(scale)
        ).astype(np.float32)
