"""16-bit floating-point truncation baseline.

A common practical scheme (half-precision transmission) that the paper's
family of comparisons brackets between ``32-bit float`` and ``8-bit int``:
2× traffic reduction, negligible quantization error, no cross-step state.
Included as an extension baseline for the deployment-planning example and
the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.packets import CodecId, WireMessage

__all__ = ["Float16Compressor"]


class _Float16Context(CompressorContext):
    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        half = arr.astype("<f2")
        message = WireMessage(
            codec_id=CodecId.FLOAT16,
            shape=arr.shape,
            payload=half.tobytes(),
            dtype=np.float32,
        )
        return CompressionResult(message, half.astype(np.float32))


class Float16Compressor(Compressor):
    """``16-bit float``: truncate mantissa/exponent to IEEE half precision."""

    name = "16-bit float"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _Float16Context(shape)

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.FLOAT16:
            raise ValueError(f"not a float16 message: {message.codec_id!r}")
        half = np.frombuffer(message.payload, dtype="<f2")
        if half.size != message.element_count:
            raise ValueError("payload size mismatch")
        return half.reshape(message.shape).astype(np.float32)
