"""Top-k sparsification baselines (paper §5.1, ``25%``/``5% sparsification``).

Reproduces the common sparsification family (Bösen, Gaia, gradient dropping,
Deep Gradient Compression): transmit only the fraction ``p`` of entries with
the largest *absolute* magnitude (the paper uses magnitude, not relative
magnitude, "for better accuracy"), and accumulate the unsent remainder in an
error buffer for later steps.

Threshold selection avoids exhaustive sorting, as in Aji & Heafield: the
threshold is the ``(1-p)``-quantile of ``|values|`` over a bounded random
sample of the tensor (§5.1: "we only sort sampled input values").

Wire format (as in the paper): a selection bitmap costing 1 bit per state
change regardless of input size, plus the selected values as float32.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage
from repro.utils.seeding import derive_rng

__all__ = ["TopKCompressor", "sampled_threshold", "DEFAULT_SAMPLE_SIZE"]

#: Number of entries sampled when estimating the selection threshold.
DEFAULT_SAMPLE_SIZE = 4096


def sampled_threshold(
    magnitudes: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
) -> float:
    """Estimate the magnitude threshold that keeps ``fraction`` of entries.

    Sorting the full tensor is O(n log n) on multi-million-element tensors;
    sampling bounds the cost while keeping the selected fraction close to
    the target in expectation.
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    flat = magnitudes.reshape(-1)
    if flat.size == 0:
        return 0.0
    if flat.size > sample_size:
        sample = rng.choice(flat, size=sample_size, replace=False)
    else:
        sample = flat
    # The (1 - fraction) quantile of |values| is the smallest transmitted
    # magnitude. "lower" keeps the selected share >= fraction on ties.
    return float(np.quantile(sample, 1.0 - fraction, method="lower"))


class _TopKContext(CompressorContext):
    def __init__(
        self, shape: tuple[int, ...], fraction: float, rng: np.random.Generator
    ):
        super().__init__(shape)
        self.fraction = fraction
        self.rng = rng
        self.buffer = ErrorAccumulationBuffer(self.shape)

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        corrected = self.buffer.add(arr)
        magnitudes = np.abs(corrected)
        threshold = sampled_threshold(magnitudes, self.fraction, self.rng)
        selected = magnitudes >= threshold
        # A zero threshold (e.g. mostly-zero tensor) would select everything;
        # in that degenerate case transmit only true non-zeros.
        if threshold == 0.0:
            selected &= corrected != 0
        flat_selected = selected.reshape(-1)
        values = corrected.reshape(-1)[flat_selected].astype("<f4")
        bitmap = np.packbits(flat_selected)
        message = WireMessage(
            codec_id=CodecId.TOPK_SPARSE,
            shape=arr.shape,
            payload=bitmap.tobytes() + values.tobytes(),
            dtype=np.float32,
        )
        reconstruction = np.where(selected, corrected, np.float32(0.0)).astype(
            np.float32
        )
        self.buffer.subtract(reconstruction)
        return CompressionResult(message, reconstruction)

    def residual_norm(self) -> float:
        return self.buffer.l2_norm()

    def state_dict(self) -> dict:
        return {
            "residual": self.buffer.residual.copy(),
            "rng": self.rng.bit_generator.state,
        }

    def load_state(self, state: dict) -> None:
        self.buffer.load_residual(self._checked_residual(state))
        self.rng.bit_generator.state = state["rng"]


class TopKCompressor(Compressor):
    """``{p}% sparsification``: magnitude top-k with bitmap wire format."""

    def __init__(self, fraction: float, seed: int = 0):
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        self.fraction = float(fraction)
        self.seed = int(seed)
        self.name = f"{fraction:.0%} sparsification"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _TopKContext(
            shape, self.fraction, derive_rng(self.seed, "topk", self.fraction, *key)
        )

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.TOPK_SPARSE:
            raise ValueError(f"not a top-k message: {message.codec_id!r}")
        count = message.element_count
        bitmap_bytes = -(-count // 8)
        bitmap = np.frombuffer(message.payload[:bitmap_bytes], dtype=np.uint8)
        selected = np.unpackbits(bitmap, count=count).astype(bool)
        values = np.frombuffer(message.payload[bitmap_bytes:], dtype="<f4")
        if values.size != int(np.count_nonzero(selected)):
            raise ValueError("selected-value count mismatch")
        out = np.zeros(count, dtype=np.float32)
        out[selected] = values
        return out.reshape(message.shape)
