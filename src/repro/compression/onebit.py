"""MQE 1-bit quantization with error feedback (paper §5.1, ``MQE 1-bit int``).

Reproduces 1-bit stochastic gradient descent (Seide et al., Interspeech
2014): each value is reduced to its sign bit, and the two reconstruction
magnitudes are chosen to *minimize the squared quantization error* (MQE) —
the mean of the non-negative values and the mean of the negative values.
Quantization errors are accumulated and folded into the next step.

Wire format: a packed bitmap (1 = non-negative partition) plus two float64
reconstruction magnitudes in the scalar header. 32→1 bits per value before
framing overhead.

The paper notes this design's high computation overhead from its
"unconventional rounding function" (partition means rather than a plain
``round()``); the codec-throughput benchmark quantifies our equivalent.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage

__all__ = ["OneBitCompressor"]


def _mqe_quantize(arr: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Split by sign; return (bitmap, mean_negative, mean_nonnegative)."""
    nonneg = arr >= 0
    n_pos = int(np.count_nonzero(nonneg))
    n_neg = arr.size - n_pos
    # Partition means minimize sum of squared errors within each partition.
    mean_pos = float(arr[nonneg].mean()) if n_pos else 0.0
    mean_neg = float(arr[~nonneg].mean()) if n_neg else 0.0
    return nonneg, mean_neg, mean_pos


class _OneBitContext(CompressorContext):
    def __init__(self, shape: tuple[int, ...]):
        super().__init__(shape)
        self.buffer = ErrorAccumulationBuffer(self.shape)

    def state_dict(self) -> dict:
        return {"residual": self.buffer.residual.copy()}

    def load_state(self, state: dict) -> None:
        self.buffer.load_residual(self._checked_residual(state))

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        arr = self._check_shape(tensor)
        corrected = self.buffer.add(arr)
        nonneg, mean_neg, mean_pos = _mqe_quantize(corrected)
        bitmap = np.packbits(nonneg.reshape(-1))
        message = WireMessage(
            codec_id=CodecId.ONEBIT_MQE,
            shape=arr.shape,
            payload=bitmap.tobytes(),
            scalars=(mean_neg, mean_pos),
            dtype=np.float32,
        )
        reconstruction = np.where(
            nonneg, np.float32(mean_pos), np.float32(mean_neg)
        ).astype(np.float32)
        self.buffer.subtract(reconstruction)
        return CompressionResult(message, reconstruction)

    def residual_norm(self) -> float:
        return self.buffer.l2_norm()


class OneBitCompressor(Compressor):
    """``MQE 1-bit int``: sign bit + per-partition mean magnitudes."""

    name = "MQE 1-bit int"

    def make_context(
        self, shape: tuple[int, ...], *, key: tuple[object, ...] = ()
    ) -> CompressorContext:
        return _OneBitContext(shape)

    def decompress(self, message: WireMessage) -> np.ndarray:
        if message.codec_id is not CodecId.ONEBIT_MQE:
            raise ValueError(f"not an MQE 1-bit message: {message.codec_id!r}")
        count = message.element_count
        bitmap = np.frombuffer(message.payload, dtype=np.uint8)
        if bitmap.size != -(-count // 8):
            raise ValueError("bitmap size mismatch")
        nonneg = np.unpackbits(bitmap, count=count).astype(bool)
        mean_neg, mean_pos = message.scalars
        return np.where(
            nonneg, np.float32(mean_pos), np.float32(mean_neg)
        ).astype(np.float32).reshape(message.shape)
