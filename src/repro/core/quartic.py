"""Quartic encoding: five base-3 digits per byte (paper §3.2).

A 3-value quantized tensor has entries in ``{-1, 0, 1}``. After adding 1,
each entry is a base-3 digit in ``{0, 1, 2}``. Packing five digits into the
quartic-form expression

.. math::

    a \\cdot 3^4 + b \\cdot 3^3 + c \\cdot 3^2 + d \\cdot 3 + e

uses one byte per five values (``3^5 = 243 <= 256``), i.e. 1.6 bits per
value — within 0.95% of the entropy bound ``log2(3) ≈ 1.585`` and 20%
smaller than the naive 2-bit encoding.

Two useful structural facts exploited downstream by zero-run encoding:

* output bytes lie in ``[0, 242]``, leaving ``243–255`` free as escape
  codes, and
* a group of five zeros encodes to the byte ``121`` (``1·81+1·27+1·9+1·3+1``).

Both the vectorized NumPy implementation and a digit-at-a-time reference
implementation are provided; tests cross-check them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "quartic_encode",
    "quartic_encode_batch",
    "quartic_decode",
    "quartic_encode_reference",
    "quartic_decode_reference",
    "ZERO_GROUP_BYTE",
    "MAX_QUARTIC_BYTE",
    "GROUP_SIZE",
    "padded_length",
]

GROUP_SIZE = 5
#: Byte value produced by a group of five quantized zeros.
ZERO_GROUP_BYTE = 121
#: Largest byte value quartic encoding can produce (= 3**5 - 1).
MAX_QUARTIC_BYTE = 242

# Powers of 3 for the five digit positions, most-significant first.
_POWERS = np.array([81, 27, 9, 3, 1], dtype=np.uint8)


def padded_length(n: int) -> int:
    """Number of values after padding ``n`` up to a multiple of 5."""
    return -(-n // GROUP_SIZE) * GROUP_SIZE


def quartic_encode(values: np.ndarray) -> np.ndarray:
    """Pack a ternary tensor into quartic bytes.

    Parameters
    ----------
    values:
        Integer array (any shape) with entries in ``{-1, 0, 1}``.

    Returns
    -------
    numpy.ndarray
        1-D ``uint8`` array of length ``ceil(values.size / 5)`` with entries
        in ``[0, 242]``. The trailing group is zero-padded, i.e. padded with
        digit value ``1`` after the +1 shift — callers must remember the
        original element count to decode (the 3LC wire header stores the
        shape).

    Raises
    ------
    ValueError
        If any entry lies outside ``{-1, 0, 1}``.
    """
    arr = np.asarray(values)
    flat = arr.reshape(-1)
    if flat.size and (flat.min() < -1 or flat.max() > 1):
        raise ValueError("quartic encoding requires values in {-1, 0, 1}")
    # Steps 1-4 of the paper: +1, cast to uint8, flatten, pad to multiple of 5.
    digits = (flat.astype(np.int16) + 1).astype(np.uint8)
    pad = padded_length(flat.size) - flat.size
    if pad:
        # Padding with 1 (the digit for quantized zero) keeps padded groups
        # eligible for zero-run encoding.
        digits = np.concatenate([digits, np.ones(pad, dtype=np.uint8)])
    # Step 5-6: partition into 5 columns and evaluate the quartic form.
    groups = digits.reshape(-1, GROUP_SIZE)
    # uint8 arithmetic would overflow (max 2*81=162 fits, but the sum 242
    # also fits); still, accumulate in uint16 for clarity and safety.
    packed = (groups.astype(np.uint16) * _POWERS.astype(np.uint16)).sum(axis=1)
    return packed.astype(np.uint8)


def quartic_encode_batch(
    values: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pack many concatenated ternary segments in one vectorized pass.

    ``values`` is the concatenation of the segments' ternary entries;
    ``lengths`` gives each segment's element count. Each segment is padded
    to a multiple of :data:`GROUP_SIZE` *independently* (runs never span a
    segment boundary, exactly as if :func:`quartic_encode` had been called
    per segment) and all groups are evaluated with a single quartic-form
    pass.

    Returns
    -------
    (packed, byte_offsets)
        ``packed``: 1-D ``uint8`` array holding every segment's bytes
        back to back; segment ``i`` occupies
        ``packed[byte_offsets[i]:byte_offsets[i+1]]`` and is bit-identical
        to ``quartic_encode`` of that segment.
    """
    flat = np.asarray(values).reshape(-1)
    lengths = np.asarray(lengths, dtype=np.intp)
    total = int(lengths.sum())
    if flat.size != total:
        raise ValueError(
            f"segment lengths sum to {total}, values array has {flat.size}"
        )
    if flat.size and (flat.min() < -1 or flat.max() > 1):
        raise ValueError("quartic encoding requires values in {-1, 0, 1}")
    padded = -(-lengths // GROUP_SIZE) * GROUP_SIZE
    padded_total = int(padded.sum())
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    padded_starts = np.concatenate(([0], np.cumsum(padded)[:-1]))
    # Scatter each segment's digits into a ones-filled (= digit of a
    # quantized zero, keeping padded groups ZRE-eligible) padded buffer.
    digits = np.ones(padded_total, dtype=np.uint8)
    dest = np.arange(total) + np.repeat(padded_starts - starts, lengths)
    digits[dest] = (flat.astype(np.int16) + 1).astype(np.uint8)
    groups = digits.reshape(-1, GROUP_SIZE)
    packed = (groups.astype(np.uint16) * _POWERS.astype(np.uint16)).sum(axis=1)
    byte_offsets = np.concatenate(([0], np.cumsum(padded // GROUP_SIZE)))
    return packed.astype(np.uint8), byte_offsets


def quartic_decode(
    encoded: np.ndarray, count: int, shape: tuple[int, ...] | None = None
) -> np.ndarray:
    """Unpack quartic bytes back to a ternary tensor.

    Parameters
    ----------
    encoded:
        1-D ``uint8`` array produced by :func:`quartic_encode`.
    count:
        Number of original (un-padded) values.
    shape:
        Optional output shape; must have ``prod(shape) == count``.

    Returns
    -------
    numpy.ndarray
        ``int8`` array with entries in ``{-1, 0, 1}``.
    """
    arr = np.asarray(encoded, dtype=np.uint8).reshape(-1)
    if count < 0:
        raise ValueError("count must be non-negative")
    if arr.size != (padded_length(count) // GROUP_SIZE):
        raise ValueError(
            f"encoded length {arr.size} inconsistent with count {count}"
        )
    if arr.size and arr.max() > MAX_QUARTIC_BYTE:
        raise ValueError("byte outside quartic range [0, 242]")
    # Base-3 digit extraction: divide by powers of 3, take remainder mod 3.
    a = arr.astype(np.uint16)
    digits = (a[:, None] // _POWERS.astype(np.uint16)) % 3
    flat = digits.reshape(-1)[:count].astype(np.int8) - 1
    if shape is not None:
        expected = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if expected != count:
            raise ValueError(f"shape {shape} incompatible with count {count}")
        return flat.reshape(shape)
    return flat


def quartic_encode_reference(values: np.ndarray) -> np.ndarray:
    """Digit-at-a-time reference encoder (gold standard for tests)."""
    flat = [int(v) + 1 for v in np.asarray(values).reshape(-1)]
    for v in flat:
        if v not in (0, 1, 2):
            raise ValueError("quartic encoding requires values in {-1, 0, 1}")
    while len(flat) % GROUP_SIZE:
        flat.append(1)
    out = []
    for i in range(0, len(flat), GROUP_SIZE):
        a, b, c, d, e = flat[i : i + GROUP_SIZE]
        out.append(a * 81 + b * 27 + c * 9 + d * 3 + e)
    return np.array(out, dtype=np.uint8)


def quartic_decode_reference(encoded: np.ndarray, count: int) -> np.ndarray:
    """Digit-at-a-time reference decoder (gold standard for tests)."""
    digits: list[int] = []
    for byte in np.asarray(encoded, dtype=np.uint8).reshape(-1):
        b = int(byte)
        if b > MAX_QUARTIC_BYTE:
            raise ValueError("byte outside quartic range [0, 242]")
        group = []
        for power in (81, 27, 9, 3, 1):
            group.append(b // power % 3)
        digits.extend(group)
    return np.array(digits[:count], dtype=np.int8) - 1
