"""3LC core: the paper's primary contribution.

Three composable transforms (paper §3):

* :mod:`repro.core.quantization` — 3-value quantization with sparsity
  multiplication (lossy),
* :mod:`repro.core.quartic` — quartic encoding, five base-3 digits per byte
  (lossless),
* :mod:`repro.core.zre` — zero-run encoding of zero-group bytes (lossless),

plus the error-feedback machinery (:mod:`repro.core.error_feedback`), the
wire format (:mod:`repro.core.packets`), and the assembled codec
(:mod:`repro.core.codec`).
"""

from repro.core.codec import CompressionContext, CompressionResult, ThreeLCCodec
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage
from repro.core.quantization import (
    QuantizedTensor,
    dequantize_3value,
    quantize_3value,
    quantize_stochastic_ternary,
)
from repro.core.quartic import quartic_decode, quartic_encode
from repro.core.twobit import twobit_decode, twobit_encode
from repro.core.zre import zre_decode, zre_encode

__all__ = [
    "ThreeLCCodec",
    "CompressionContext",
    "CompressionResult",
    "ErrorAccumulationBuffer",
    "CodecId",
    "WireMessage",
    "QuantizedTensor",
    "quantize_3value",
    "dequantize_3value",
    "quantize_stochastic_ternary",
    "quartic_encode",
    "quartic_decode",
    "zre_encode",
    "zre_decode",
    "twobit_encode",
    "twobit_decode",
]
