"""Byte-oriented LZ compression (the §3.3 "general-purpose" comparator).

The paper positions zero-run encoding against "general-purpose compression
algorithms" (§3.3, citing Snappy [12]): ZRE wins on simplicity and speed by
knowing the one byte value that matters (121 — five quantized zeros),
while an LZ coder must discover repetition generically. This module is
that comparator: a small LZ77 in the Snappy family — greedy hash-table
matching, byte-aligned tokens, no entropy stage — used by
``benchmarks/bench_zre_vs_entropy.py`` to put numbers on the claim.

Format (byte-aligned, two token kinds)::

    0b0LLLLLLL                 literal run: L+1 raw bytes follow (1..128)
    0b1LLLLLLL  off_lo off_hi  copy: length L+4 (4..131) from `offset`
                               (1..65535) bytes back; may self-overlap,
                               which encodes runs exactly like RLE

The encoder is a Python loop (honestly so — the comparison point *is*
implementation complexity; ZRE is three NumPy calls), with the 4-byte
match hashes precomputed vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lz_encode", "lz_decode", "MIN_MATCH", "MAX_MATCH", "MAX_OFFSET"]

MIN_MATCH = 4
MAX_MATCH = MIN_MATCH + 127
MAX_OFFSET = 0xFFFF
_MAX_LITERAL = 128


def _hashes(data: bytes) -> np.ndarray:
    """FNV-style rolling hash of every 4-byte window, vectorized."""
    arr = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    h = arr[:-3] * np.uint32(2654435761)
    h ^= arr[1:-2] * np.uint32(40503)
    h ^= arr[2:-1] * np.uint32(2246822519)
    h ^= arr[3:]
    return h & np.uint32(0xFFFF)


def lz_encode(data: bytes) -> bytes:
    """Compress ``data`` with greedy hash-table LZ77."""
    n = len(data)
    if n == 0:
        return b""
    out = bytearray()
    literal_start = 0

    def flush_literals(upto: int) -> None:
        pos = literal_start
        while pos < upto:
            run = min(_MAX_LITERAL, upto - pos)
            out.append(run - 1)
            out.extend(data[pos : pos + run])
            pos += run

    if n < MIN_MATCH:
        flush_literals(n)
        return bytes(out)

    hashes = _hashes(data)
    table: dict[int, int] = {}
    i = 0
    while i < n - MIN_MATCH + 1:
        h = int(hashes[i])
        candidate = table.get(h)
        table[h] = i
        if (
            candidate is not None
            and i - candidate <= MAX_OFFSET
            and data[candidate : candidate + MIN_MATCH] == data[i : i + MIN_MATCH]
        ):
            length = MIN_MATCH
            limit = min(MAX_MATCH, n - i)
            while length < limit and data[candidate + length] == data[i + length]:
                length += 1
            flush_literals(i)
            offset = i - candidate
            out.append(0x80 | (length - MIN_MATCH))
            out.append(offset & 0xFF)
            out.append(offset >> 8)
            i += length
            literal_start = i
        else:
            i += 1
    flush_literals(n)
    return bytes(out)


def lz_decode(stream: bytes) -> bytes:
    """Decompress an :func:`lz_encode` stream.

    Raises :class:`ValueError` on truncated tokens or out-of-range copies.
    """
    out = bytearray()
    i = 0
    n = len(stream)
    while i < n:
        tag = stream[i]
        i += 1
        if tag < 0x80:
            run = tag + 1
            if i + run > n:
                raise ValueError("truncated literal run")
            out.extend(stream[i : i + run])
            i += run
        else:
            if i + 2 > n:
                raise ValueError("truncated copy token")
            length = (tag & 0x7F) + MIN_MATCH
            offset = stream[i] | (stream[i + 1] << 8)
            i += 2
            if offset == 0 or offset > len(out):
                raise ValueError(f"copy offset {offset} out of range")
            start = len(out) - offset
            if offset >= length:
                out.extend(out[start : start + length])
            else:
                # Self-overlapping copy: RLE-like byte-at-a-time semantics.
                for k in range(length):
                    out.append(out[start + k])
    return bytes(out)
