"""3-value quantization with sparsity multiplication (paper §3.1).

The lossy stage of 3LC. Given an input tensor ``T`` and a sparsity
multiplier ``s`` with ``1 <= s < 2``:

.. math::

    M = \\max(|T|) \\cdot s, \\qquad
    Q = \\mathrm{round}(T / M) \\in \\{-1, 0, 1\\}, \\qquad
    T_{out} = M \\cdot Q.

Because ``|T / M| <= 1/s <= 1``, rounding yields only the three values
``{-1, 0, 1}``. Raising ``s`` above 1 shrinks ``|T/M|`` so that more entries
round to zero — the *sparsity multiplication* knob that trades information
for compressibility — while dequantization with the larger ``M`` preserves
the magnitude of the surviving values.

The paper's convergence argument (§3.1 "Convergence") follows from the error
bound enforced here: ``max|T - M·Q| <= M/2 < max|T|`` for ``1 <= s < 2``.

This module also provides the *stochastic* ternary quantizer used by the
``Stoch 3-value + QE`` baseline (TernGrad-like, §5.1): each entry is mapped
to ``sign(t)`` with probability ``|t|/M`` and to 0 otherwise, making the
quantized tensor an unbiased estimator of the input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_3value",
    "quantize_3value_batch",
    "dequantize_3value",
    "quantize_stochastic_ternary",
    "MIN_SPARSITY_MULTIPLIER",
    "MAX_SPARSITY_MULTIPLIER",
]

MIN_SPARSITY_MULTIPLIER = 1.0
MAX_SPARSITY_MULTIPLIER = 2.0  # exclusive


@dataclass(frozen=True)
class QuantizedTensor:
    """Result of 3-value quantization.

    Attributes
    ----------
    values:
        ``int8`` array with entries in ``{-1, 0, 1}``, same shape as input.
    scale:
        The scalar ``M`` (max magnitude times sparsity multiplier). Zero
        if and only if the input tensor was entirely zero.
    """

    values: np.ndarray
    scale: float

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries in the quantized values."""
        if self.values.size == 0:
            return 1.0
        return float(np.count_nonzero(self.values == 0)) / self.values.size

    def dequantize(self, dtype: np.dtype | type = np.float32) -> np.ndarray:
        """Reconstruct ``M * Q`` as a floating-point tensor."""
        return dequantize_3value(self, dtype=dtype)


def _validate_multiplier(s: float) -> float:
    s = float(s)
    if not (MIN_SPARSITY_MULTIPLIER <= s < MAX_SPARSITY_MULTIPLIER):
        raise ValueError(
            f"sparsity multiplier must satisfy 1 <= s < 2, got {s!r}"
        )
    return s


def quantize_3value(tensor: np.ndarray, s: float = 1.0) -> QuantizedTensor:
    """Quantize a real tensor onto ``{-1, 0, 1}`` (Equations 1–2).

    Parameters
    ----------
    tensor:
        Any-shape floating-point array. Must be finite.
    s:
        Sparsity multiplier, ``1 <= s < 2``. Larger values emit more zeros.

    Returns
    -------
    QuantizedTensor
        Ternary values plus the dequantization scale ``M``.

    Notes
    -----
    Uses plain ``np.rint`` (round-half-to-even), the vectorizable
    ``round()`` the paper chooses over custom rounding functions. The half
    case ``|t| = M/2`` is measure-zero for real gradients and either
    rounding direction keeps the ``M/2`` error bound.
    """
    s = _validate_multiplier(s)
    arr = np.asarray(tensor)
    if arr.size == 0:
        return QuantizedTensor(np.zeros(arr.shape, dtype=np.int8), 0.0)
    if not np.all(np.isfinite(arr)):
        raise ValueError("cannot quantize non-finite tensor")
    max_mag = float(np.max(np.abs(arr)))
    scale = max_mag * s
    if scale == 0.0:
        return QuantizedTensor(np.zeros(arr.shape, dtype=np.int8), 0.0)
    values = np.rint(arr / scale).astype(np.int8)
    return QuantizedTensor(values, scale)


def dequantize_3value(
    quantized: QuantizedTensor, dtype: np.dtype | type = np.float32
) -> np.ndarray:
    """Reconstruct the tensor as ``M * Q`` (Equation 3)."""
    return (quantized.scale * quantized.values.astype(dtype, copy=False)).astype(
        dtype, copy=False
    )


def quantize_3value_batch(
    flat: np.ndarray, lengths: np.ndarray, s: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize many concatenated tensors in one vectorized pass.

    ``flat`` is the concatenation of the segments' flattened values;
    ``lengths`` gives each segment's element count. Each segment gets its
    own scale ``M_i = max(|segment_i|) * s``, exactly as if
    :func:`quantize_3value` had been called per segment — the per-element
    arithmetic is bit-identical: the segment maxima come from one
    ``maximum.reduceat``, and each element divides by its segment's scale
    cast to ``flat``'s dtype, the same cast NumPy applies to the scalar
    divisor in the per-tensor path.

    Returns
    -------
    (values, scales)
        ``values``: ``int8`` array of ``flat``'s length with entries in
        ``{-1, 0, 1}``; ``scales``: float64 array of per-segment ``M``
        (0.0 exactly for all-zero or empty segments).
    """
    s = _validate_multiplier(s)
    flat = np.asarray(flat).reshape(-1)
    lengths = np.asarray(lengths, dtype=np.intp)
    total = int(lengths.sum())
    if flat.size != total:
        raise ValueError(
            f"segment lengths sum to {total}, flat array has {flat.size}"
        )
    if flat.size and not np.all(np.isfinite(flat)):
        raise ValueError("cannot quantize non-finite tensor")
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    mags = np.zeros(lengths.shape[0], dtype=np.float64)
    nonempty = lengths > 0
    if flat.size:
        # Zero-length segments occupy no indices, so consecutive nonempty
        # starts bound exactly one segment each.
        mags[nonempty] = np.maximum.reduceat(np.abs(flat), starts[nonempty])
    scales = mags * s
    # A zero scale means the whole segment is zero, so dividing it by the
    # placeholder 1.0 still rounds to all-zero values — no masking needed.
    divisor = np.where(scales > 0.0, scales, 1.0)[
        np.repeat(np.arange(lengths.shape[0]), lengths)
    ].astype(flat.dtype, copy=False)
    values = np.rint(flat / divisor).astype(np.int8)
    return values, scales


def quantize_stochastic_ternary(
    tensor: np.ndarray, rng: np.random.Generator
) -> QuantizedTensor:
    """TernGrad-style stochastic ternary quantization (baseline, §5.1).

    Each entry ``t`` becomes ``sign(t)`` with probability ``|t| / M`` where
    ``M = max(|T|)``, else 0, so ``E[M·Q] = T`` (unbiased). No sparsity
    multiplier: TernGrad has no compression-level knob (paper §6).

    Parameters
    ----------
    tensor:
        Input array.
    rng:
        Source of randomness; callers pass a derived, per-context generator
        so runs are reproducible.
    """
    arr = np.asarray(tensor)
    if arr.size == 0:
        return QuantizedTensor(np.zeros(arr.shape, dtype=np.int8), 0.0)
    if not np.all(np.isfinite(arr)):
        raise ValueError("cannot quantize non-finite tensor")
    scale = float(np.max(np.abs(arr)))
    if scale == 0.0:
        return QuantizedTensor(np.zeros(arr.shape, dtype=np.int8), 0.0)
    prob = np.abs(arr) / scale
    keep = rng.random(arr.shape) < prob
    values = (np.sign(arr) * keep).astype(np.int8)
    return QuantizedTensor(values, scale)
