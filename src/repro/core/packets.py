"""Self-describing wire format for compressed state-change tensors.

Every compression scheme in this repository serializes to the same framed
message so that (a) decompression needs no out-of-band metadata and (b) the
experiment harness measures *honest* wire sizes that include header
overhead, exactly as network traffic accounting would.

Frame layout (little-endian)::

    offset  size  field
    0       4     magic  b"3LC\\0"
    4       1     format version (currently 1)
    5       1     codec id (registry of schemes, see CodecId)
    6       1     dtype code of the decompressed tensor
    7       1     ndim
    8       1     number of float64 scalar parameters
    9       3     reserved (zero)
    12      4*ndim        shape, uint32 each
    ..      8*n_scalars   scalar parameters (e.g. the 3LC scale M)
    ..      8     payload length, uint64
    ..      n     payload bytes
    ..      4     CRC32 over everything above

The CRC is a transport-integrity check: the decompressors in this repo are
exercised by property-based fuzz tests, and a checksum distinguishes
"corrupted frame" from "codec bug" decisively.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from functools import cached_property

import numpy as np

__all__ = ["CodecId", "WireMessage", "FusedWireMessage", "MAGIC", "FORMAT_VERSION"]

MAGIC = b"3LC\0"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sBBBBB3x")
_LEN = struct.Struct("<Q")
_CRC = struct.Struct("<I")

_DTYPE_CODES: dict[int, np.dtype] = {
    0: np.dtype(np.float32),
    1: np.dtype(np.float64),
    2: np.dtype(np.float16),
}
_DTYPE_TO_CODE = {v: k for k, v in _DTYPE_CODES.items()}


class CodecId(IntEnum):
    """Registry of compression schemes appearing on the wire."""

    FLOAT32 = 0
    INT8 = 1
    ONEBIT_MQE = 2
    STOCHASTIC_TERNARY_QE = 3
    TOPK_SPARSE = 4
    THREELC = 5
    THREELC_NO_ZRE = 6
    TWO_BIT_TERNARY = 7
    FLOAT16 = 8
    ROUND_ROBIN = 9
    THREELC_HUFFMAN = 10
    QSGD = 11
    DGC_SPARSE = 12
    GAIA_SPARSE = 13
    LOW_RANK = 14
    FUSED_BUCKET = 15


@dataclass(frozen=True)
class WireMessage:
    """A framed compressed tensor ready for (simulated) transmission.

    Attributes
    ----------
    codec_id:
        Which scheme produced the payload.
    shape:
        Shape of the decompressed tensor.
    dtype:
        Dtype of the decompressed tensor.
    scalars:
        Scheme-specific float parameters (e.g. 3LC's ``M``; MQE 1-bit's two
        reconstruction magnitudes; int8's scale).
    payload:
        Opaque payload bytes, interpreted by the owning codec.
    """

    codec_id: CodecId
    shape: tuple[int, ...]
    payload: bytes
    scalars: tuple[float, ...] = field(default=())
    dtype: np.dtype = field(default=np.dtype(np.float32))

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.dtype not in _DTYPE_TO_CODE:
            raise ValueError(f"unsupported tensor dtype {self.dtype}")
        if len(self.shape) > 255:
            raise ValueError("too many dimensions")
        if len(self.scalars) > 255:
            raise ValueError("too many scalar parameters")

    @property
    def element_count(self) -> int:
        """Number of elements in the decompressed tensor."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count

    @property
    def wire_size(self) -> int:
        """Total frame size in bytes, headers and CRC included."""
        return (
            _HEADER.size
            + 4 * len(self.shape)
            + 8 * len(self.scalars)
            + _LEN.size
            + len(self.payload)
            + _CRC.size
        )

    def pack(self) -> bytes:
        """Serialize the frame to bytes."""
        head = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            int(self.codec_id),
            _DTYPE_TO_CODE[self.dtype],
            len(self.shape),
            len(self.scalars),
        )
        shape_bytes = struct.pack(f"<{len(self.shape)}I", *self.shape)
        scalar_bytes = struct.pack(f"<{len(self.scalars)}d", *self.scalars)
        body = head + shape_bytes + scalar_bytes + _LEN.pack(len(self.payload)) + self.payload
        return body + _CRC.pack(zlib.crc32(body))

    @classmethod
    def unpack(cls, data: bytes) -> "WireMessage":
        """Deserialize a frame, verifying magic, version, and CRC."""
        if len(data) < _HEADER.size + _LEN.size + _CRC.size:
            raise ValueError("frame too short")
        body, crc_bytes = data[:-_CRC.size], data[-_CRC.size :]
        (expected_crc,) = _CRC.unpack(crc_bytes)
        if zlib.crc32(body) != expected_crc:
            raise ValueError("frame CRC mismatch")
        magic, version, codec_id, dtype_code, ndim, n_scalars = _HEADER.unpack_from(body, 0)
        if magic != MAGIC:
            raise ValueError("bad magic")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version}")
        if dtype_code not in _DTYPE_CODES:
            raise ValueError(f"unknown dtype code {dtype_code}")
        offset = _HEADER.size
        shape = struct.unpack_from(f"<{ndim}I", body, offset)
        offset += 4 * ndim
        scalars = struct.unpack_from(f"<{n_scalars}d", body, offset)
        offset += 8 * n_scalars
        (payload_len,) = _LEN.unpack_from(body, offset)
        offset += _LEN.size
        payload = body[offset : offset + payload_len]
        if len(payload) != payload_len:
            raise ValueError("truncated payload")
        if offset + payload_len != len(body):
            raise ValueError("trailing bytes in frame")
        return cls(
            codec_id=CodecId(codec_id),
            shape=tuple(int(d) for d in shape),
            payload=payload,
            scalars=tuple(scalars),
            dtype=_DTYPE_CODES[dtype_code],
        )


_FUSED_HEADER = struct.Struct("<4sBBH")  # magic, version, codec id, tensor count


@dataclass(frozen=True)
class FusedWireMessage:
    """A multi-tensor frame: several flattened tensors in one codec payload.

    The fused-bucket hot path concatenates many small tensors into one flat
    bucket, compresses the bucket with a *single* codec call, and frames the
    result once. The frame carries the sub-tensor shape table needed to
    split the decoded bucket; which parameter owns which slot is agreed
    out-of-band by the deterministic bucket plan, exactly as gradient-fusion
    implementations agree on bucket assignment before training starts.

    Frame layout (little-endian)::

        offset  size  field
        0       4     magic  b"3LC\\0"
        4       1     format version
        5       1     codec id (always CodecId.FUSED_BUCKET)
        6       2     number of sub-tensors, uint16
        8       var   shape table: per tensor, u8 ndim + u32 dims
        ..      8     inner frame length, uint64
        ..      n     inner frame (a complete WireMessage of the flat bucket)
        ..      4     CRC32 over everything above

    Attributes
    ----------
    inner:
        The compressed flat bucket (its shape is ``(total_elements,)``).
    shapes:
        Original shape of each sub-tensor, in bucket order.
    """

    inner: WireMessage
    shapes: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "shapes", tuple(tuple(int(d) for d in s) for s in self.shapes)
        )
        if not self.shapes:
            raise ValueError("a fused message needs at least one sub-tensor")
        if len(self.shapes) > 0xFFFF:
            raise ValueError("too many sub-tensors")
        total = 0
        for shape in self.shapes:
            if len(shape) > 255:
                raise ValueError("too many dimensions in sub-tensor shape")
            total += math.prod(shape)
        if total != self.inner.element_count:
            raise ValueError(
                f"shape table covers {total} elements but the inner frame "
                f"decodes {self.inner.element_count}"
            )

    @property
    def codec_id(self) -> CodecId:
        return CodecId.FUSED_BUCKET

    @property
    def element_count(self) -> int:
        """Total elements across all fused sub-tensors."""
        return self.inner.element_count

    @cached_property
    def wire_size(self) -> int:
        """Total frame size in bytes, shape table and inner frame included."""
        table = sum(1 + 4 * len(shape) for shape in self.shapes)
        return _FUSED_HEADER.size + table + _LEN.size + self.inner.wire_size + _CRC.size

    def pack(self) -> bytes:
        """Serialize the fused frame to bytes."""
        head = _FUSED_HEADER.pack(
            MAGIC, FORMAT_VERSION, int(CodecId.FUSED_BUCKET), len(self.shapes)
        )
        table = b"".join(
            struct.pack(f"<B{len(shape)}I", len(shape), *shape)
            for shape in self.shapes
        )
        inner = self.inner.pack()
        body = head + table + _LEN.pack(len(inner)) + inner
        return body + _CRC.pack(zlib.crc32(body))

    @classmethod
    def unpack(cls, data: bytes) -> "FusedWireMessage":
        """Deserialize a fused frame, verifying magic, version, and CRC."""
        if len(data) < _FUSED_HEADER.size + _LEN.size + _CRC.size:
            raise ValueError("fused frame too short")
        body, crc_bytes = data[: -_CRC.size], data[-_CRC.size :]
        (expected_crc,) = _CRC.unpack(crc_bytes)
        if zlib.crc32(body) != expected_crc:
            raise ValueError("fused frame CRC mismatch")
        magic, version, codec_id, count = _FUSED_HEADER.unpack_from(body, 0)
        if magic != MAGIC:
            raise ValueError("bad magic")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version}")
        if codec_id != int(CodecId.FUSED_BUCKET):
            raise ValueError(f"not a fused frame: codec id {codec_id}")
        offset = _FUSED_HEADER.size
        shapes = []
        for _ in range(count):
            (ndim,) = struct.unpack_from("<B", body, offset)
            offset += 1
            dims = struct.unpack_from(f"<{ndim}I", body, offset)
            offset += 4 * ndim
            shapes.append(tuple(int(d) for d in dims))
        (inner_len,) = _LEN.unpack_from(body, offset)
        offset += _LEN.size
        inner_bytes = body[offset : offset + inner_len]
        if len(inner_bytes) != inner_len:
            raise ValueError("truncated inner frame")
        if offset + inner_len != len(body):
            raise ValueError("trailing bytes in fused frame")
        return cls(inner=WireMessage.unpack(inner_bytes), shapes=tuple(shapes))
