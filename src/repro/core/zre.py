"""Zero-run encoding (ZRE): run-length coding of zero groups (paper §3.3).

Quartic encoding maps a group of five quantized zeros to the byte ``121``
and never emits bytes above ``242``. ZRE exploits the spare byte values:
a run of ``k`` consecutive ``121`` bytes with ``2 <= k <= 14`` is replaced
by the single escape byte ``243 + (k - 2)``. Longer runs are split into
chunks of 14. A lone ``121`` is left literal.

Combined with 3-value quantization and quartic encoding this yields the
paper's headline hypothetical: an all-zero float32 tensor compresses by
``280×`` (32 bits → 32/280 bits per value: five values per byte, fourteen
bytes per escape byte → 32·5·14/16... see ``tests/core/test_zre.py`` for the
exact accounting).

ZRE is byte-level only — no bit operations, no lookup tables — matching the
paper's low-overhead goal. The vectorized implementation decomposes the
input into maximal equal-value runs with NumPy and emits per-run segments
with ``np.repeat``; a byte-at-a-time reference implementation is kept for
property tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.quartic import MAX_QUARTIC_BYTE, ZERO_GROUP_BYTE

__all__ = [
    "zre_encode",
    "zre_decode",
    "zre_encode_reference",
    "zre_decode_reference",
    "MIN_RUN",
    "MAX_RUN",
    "FIRST_ESCAPE_BYTE",
    "LAST_ESCAPE_BYTE",
]

#: Shortest run of zero-group bytes replaced by an escape byte.
MIN_RUN = 2
#: Longest run a single escape byte can represent.
MAX_RUN = 14
#: Escape byte for a run of MIN_RUN zero-groups.
FIRST_ESCAPE_BYTE = 243
#: Escape byte for a run of MAX_RUN zero-groups.
LAST_ESCAPE_BYTE = 255


def zre_encode(data: np.ndarray) -> np.ndarray:
    """Zero-run encode a quartic byte stream.

    Parameters
    ----------
    data:
        1-D ``uint8`` array with entries in ``[0, 242]`` (quartic output).

    Returns
    -------
    numpy.ndarray
        1-D ``uint8`` array mixing literal bytes ``[0, 242]`` and escape
        bytes ``[243, 255]``. Never longer than the input.
    """
    arr = np.asarray(data, dtype=np.uint8).reshape(-1)
    n = arr.size
    if n == 0:
        return arr.copy()
    if int(arr.max()) > MAX_QUARTIC_BYTE:
        raise ValueError("ZRE input must be quartic bytes in [0, 242]")

    # Decompose into maximal runs of equal bytes.
    boundaries = np.flatnonzero(arr[1:] != arr[:-1]) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
    ends = np.concatenate([boundaries, np.array([n], dtype=np.int64)])
    lengths = ends - starts
    values = arr[starts]

    is_zero_run = values == ZERO_GROUP_BYTE
    # Each zero run of length L becomes (L // 14) escape bytes for full
    # chunks plus at most one byte for the remainder (escape if >= 2,
    # literal 121 if == 1). Non-zero runs are copied literally.
    full_chunks = np.where(is_zero_run, lengths // MAX_RUN, 0)
    remainder = np.where(is_zero_run, lengths % MAX_RUN, 0)

    # Segment A: full-chunk escapes for zero runs, literal repeats otherwise.
    seg_a_value = np.where(is_zero_run, LAST_ESCAPE_BYTE, values).astype(np.uint8)
    seg_a_count = np.where(is_zero_run, full_chunks, lengths)
    # Segment B: the remainder byte of zero runs (count 0 or 1).
    seg_b_value = np.where(
        remainder >= MIN_RUN,
        FIRST_ESCAPE_BYTE + remainder - MIN_RUN,
        ZERO_GROUP_BYTE,
    ).astype(np.uint8)
    seg_b_count = (is_zero_run & (remainder >= 1)).astype(np.int64)

    # Interleave A then B per run and expand.
    seg_values = np.stack([seg_a_value, seg_b_value], axis=1).reshape(-1)
    seg_counts = np.stack([seg_a_count, seg_b_count], axis=1).reshape(-1)
    return np.repeat(seg_values, seg_counts)


def zre_decode(data: np.ndarray) -> np.ndarray:
    """Invert :func:`zre_encode`.

    Escape bytes ``243 + j`` expand to ``j + 2`` copies of the zero-group
    byte ``121``; all other bytes pass through.
    """
    arr = np.asarray(data, dtype=np.uint8).reshape(-1)
    if arr.size == 0:
        return arr.copy()
    is_escape = arr >= FIRST_ESCAPE_BYTE
    run_lengths = np.where(is_escape, arr.astype(np.int64) - FIRST_ESCAPE_BYTE + MIN_RUN, 1)
    out_values = np.where(is_escape, np.uint8(ZERO_GROUP_BYTE), arr)
    return np.repeat(out_values, run_lengths)


def zre_encode_reference(data: np.ndarray) -> np.ndarray:
    """Byte-at-a-time reference encoder (gold standard for tests)."""
    out: list[int] = []
    run = 0
    for byte in np.asarray(data, dtype=np.uint8).reshape(-1):
        b = int(byte)
        if b > MAX_QUARTIC_BYTE:
            raise ValueError("ZRE input must be quartic bytes in [0, 242]")
        if b == ZERO_GROUP_BYTE:
            run += 1
            if run == MAX_RUN:
                out.append(LAST_ESCAPE_BYTE)
                run = 0
            continue
        _flush_run(out, run)
        run = 0
        out.append(b)
    _flush_run(out, run)
    return np.array(out, dtype=np.uint8)


def _flush_run(out: list[int], run: int) -> None:
    if run == 0:
        return
    if run == 1:
        out.append(ZERO_GROUP_BYTE)
    else:
        out.append(FIRST_ESCAPE_BYTE + run - MIN_RUN)


def zre_decode_reference(data: np.ndarray) -> np.ndarray:
    """Byte-at-a-time reference decoder (gold standard for tests)."""
    out: list[int] = []
    for byte in np.asarray(data, dtype=np.uint8).reshape(-1):
        b = int(byte)
        if b >= FIRST_ESCAPE_BYTE:
            out.extend([ZERO_GROUP_BYTE] * (b - FIRST_ESCAPE_BYTE + MIN_RUN))
        else:
            out.append(b)
    return np.array(out, dtype=np.uint8)
