"""Elias gamma coding for unsigned integers (paper §6, "Quantization").

QSGD and other quantization schemes pair low-resolution values with
entropy coders; the QSGD paper specifically uses Elias integer codes for
quantization levels. 3LC's zero-run encoding is motivated as a *cheaper*
alternative (§3.3: "byte-level operations and no lookup tables"), so this
module provides the comparator: a correct, reasonably vectorized Elias
gamma codec used by the QSGD baseline and by the ZRE-vs-entropy-coding
benchmark.

Elias gamma represents a positive integer ``n`` as ``k`` zero bits followed
by the ``k+1``-bit binary expansion of ``n`` (MSB first), where
``k = floor(log2 n)``. Small integers get short codes, which suits the
heavily-zero-skewed level distributions quantization produces (levels are
shifted by one before coding because gamma cannot represent zero).

Encoding is fully vectorized (bit positions are computed with ``repeat`` /
``cumsum`` and packed with ``numpy.packbits``). Decoding is inherently
sequential — each codeword's length is discovered mid-stream — and runs as
a per-codeword Python loop over precomputed one-bit positions; the
benchmark in ``benchmarks/bench_zre_vs_entropy.py`` quantifies exactly this
asymmetry against ZRE.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "elias_gamma_encode",
    "elias_gamma_decode",
    "elias_gamma_bit_length",
    "elias_delta_encode",
    "elias_delta_decode",
    "elias_delta_bit_length",
]


def elias_gamma_bit_length(values: np.ndarray) -> int:
    """Total bits Elias gamma spends on ``values`` (all must be >= 1)."""
    arr = _checked(values)
    if arr.size == 0:
        return 0
    k = np.floor(np.log2(arr)).astype(np.int64)
    return int(np.sum(2 * k + 1))


def _checked(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"expected an integer array, got dtype {arr.dtype}")
    if arr.size and int(arr.min()) < 1:
        raise ValueError("Elias gamma requires all values >= 1")
    return arr.astype(np.uint64, copy=False)


def elias_gamma_encode(values: np.ndarray) -> bytes:
    """Encode a 1-D array of positive integers into a gamma bitstream.

    The stream is padded with zero bits to a whole number of bytes; the
    decoder takes an explicit count, so padding is unambiguous.
    """
    arr = _checked(values)
    if arr.size == 0:
        return b""
    k = np.floor(np.log2(arr.astype(np.float64))).astype(np.int64)
    lengths = 2 * k + 1
    total_bits = int(lengths.sum())
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    # For every output bit, identify its codeword and offset within it.
    owner = np.repeat(np.arange(arr.size), lengths)
    offset = np.arange(total_bits) - starts[owner]
    kk = k[owner]
    # Bits 0..k-1 are the zero prefix; bits k..2k are the binary expansion
    # of the value, MSB first.
    in_value = offset >= kk
    shift = np.where(in_value, 2 * kk - offset, 0).astype(np.uint64)
    bits = np.where(
        in_value,
        (arr[owner] >> shift) & np.uint64(1),
        np.uint64(0),
    ).astype(np.uint8)
    return np.packbits(bits).tobytes()


def elias_delta_bit_length(values: np.ndarray) -> int:
    """Total bits Elias delta spends on ``values`` (all must be >= 1)."""
    arr = _checked(values)
    if arr.size == 0:
        return 0
    k = np.floor(np.log2(arr)).astype(np.int64)
    kg = np.floor(np.log2(k + 1)).astype(np.int64)
    return int(np.sum(2 * kg + 1 + k))


def elias_delta_encode(values: np.ndarray) -> bytes:
    """Encode positive integers with Elias delta coding.

    Delta codes the *bit length* with gamma and appends the value's low
    bits, costing ``log n + 2 log log n`` — asymptotically tighter than
    gamma's ``2 log n`` and the variant the QSGD paper's analysis actually
    assumes for large quantization levels. For the level distributions
    3-value-like quantization produces (overwhelmingly 1 and 2), gamma is
    the better practical choice; the benchmark quantifies the crossover.
    """
    arr = _checked(values)
    if arr.size == 0:
        return b""
    k = np.floor(np.log2(arr.astype(np.float64))).astype(np.int64)
    kg = np.floor(np.log2(k + 1)).astype(np.int64)
    lengths = 2 * kg + 1 + k
    total_bits = int(lengths.sum())
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    owner = np.repeat(np.arange(arr.size), lengths)
    offset = np.arange(total_bits) - starts[owner]
    kk, kkg = k[owner], kg[owner]
    # Layout per codeword: kg zeros | (kg+1)-bit binary of k+1 | k low bits
    # of the value (MSB first, implicit leading 1 dropped).
    in_gamma_value = (offset >= kkg) & (offset <= 2 * kkg)
    in_low_bits = offset > 2 * kkg
    gamma_shift = np.where(in_gamma_value, 2 * kkg - offset, 0).astype(np.uint64)
    low_shift = np.where(in_low_bits, 2 * kkg + kk - offset, 0).astype(np.uint64)
    length_plus_one = (kk + 1).astype(np.uint64)
    bits = np.where(
        in_gamma_value,
        (length_plus_one >> gamma_shift) & np.uint64(1),
        np.where(
            in_low_bits,
            (arr[owner] >> low_shift) & np.uint64(1),
            np.uint64(0),
        ),
    ).astype(np.uint8)
    return np.packbits(bits).tobytes()


def elias_delta_decode(stream: bytes, count: int) -> np.ndarray:
    """Decode ``count`` delta codewords from ``stream``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(stream, dtype=np.uint8))
    ones = np.flatnonzero(bits)
    powers = np.uint64(1) << np.arange(64, dtype=np.uint64)[::-1]
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        one_idx = np.searchsorted(ones, pos)
        if one_idx >= ones.size:
            raise ValueError(f"delta stream exhausted after {i} of {count} values")
        first_one = int(ones[one_idx])
        kg = first_one - pos
        gamma_end = first_one + kg + 1
        if gamma_end > bits.size:
            raise ValueError(f"truncated delta length field at value {i}")
        gamma_bits = bits[first_one:gamma_end].astype(np.uint64)
        k = int(gamma_bits @ powers[63 - kg :][: kg + 1]) - 1
        end = gamma_end + k
        if end > bits.size:
            raise ValueError(f"truncated delta low bits at value {i}")
        low = bits[gamma_end:end].astype(np.uint64)
        value = np.uint64(1) << np.uint64(k)
        if k:
            value |= np.uint64(low @ powers[64 - k :])
        out[i] = value
        pos = end
    return out


def elias_gamma_decode(stream: bytes, count: int) -> np.ndarray:
    """Decode ``count`` gamma codewords from ``stream``.

    Raises :class:`ValueError` when the stream is exhausted before ``count``
    values are read (truncated or corrupted input).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(stream, dtype=np.uint8))
    ones = np.flatnonzero(bits)
    powers = np.uint64(1) << np.arange(64, dtype=np.uint64)[::-1]
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        # The first set bit at or after `pos` ends the zero prefix.
        one_idx = np.searchsorted(ones, pos)
        if one_idx >= ones.size:
            raise ValueError(f"gamma stream exhausted after {i} of {count} values")
        first_one = int(ones[one_idx])
        k = first_one - pos
        end = first_one + k + 1
        if end > bits.size:
            raise ValueError(f"truncated gamma codeword at value {i}")
        code_bits = bits[first_one:end].astype(np.uint64)
        out[i] = int(code_bits @ powers[63 - k :][: k + 1])
        pos = end
    return out
