"""Error accumulation buffers (paper §3.1, Figure 3).

3LC lets quantization errors happen, then corrects them at later training
steps. A per-tensor local buffer remembers the residual between what the
sender wanted to transmit and what the lossy stage actually transmitted:

1. ``buffer += input``          (accumulate)
2. ``quantized = lossy(buffer)``(transmit this)
3. ``buffer -= dequant(quantized)`` (remember what was lost)

The same mechanism serves 3LC, MQE 1-bit quantization, and top-k
sparsification (each plugs its own lossy stage into step 2), so it lives in
one place. The buffer is the *only* cross-step state a compression context
carries, which is what makes 3LC a point-to-point scheme requiring no
coordination among nodes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["ErrorAccumulationBuffer"]


class ErrorAccumulationBuffer:
    """Residual accumulator for one tensor in one transmission direction.

    Parameters
    ----------
    shape:
        Shape of the tensor this buffer corrects.
    dtype:
        Floating-point dtype of the accumulator (default ``float32``, as in
        the paper's TensorFlow prototype).

    Examples
    --------
    >>> buf = ErrorAccumulationBuffer((2, 2))
    >>> outgoing = buf.add(np.array([[0.4, -0.1], [0.0, 0.2]], dtype=np.float32))
    >>> # ... lossy-compress `outgoing`, producing `reconstructed` ...
    >>> # buf.subtract(reconstructed) stores what the receiver did not get.
    """

    def __init__(self, shape: tuple[int, ...], dtype: np.dtype | type = np.float32):
        self._residual = np.zeros(shape, dtype=dtype)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._residual.shape

    @property
    def dtype(self) -> np.dtype:
        return self._residual.dtype

    @property
    def residual(self) -> np.ndarray:
        """Read-only view of the current residual."""
        view = self._residual.view()
        view.flags.writeable = False
        return view

    def add(self, tensor: np.ndarray) -> np.ndarray:
        """Step (1): accumulate the new input; return ``residual + input``.

        The returned array is a fresh copy — mutating it does not affect the
        buffer. The buffer temporarily holds the sum until
        :meth:`subtract` records what was transmitted.
        """
        tensor = np.asarray(tensor)
        if tensor.shape != self._residual.shape:
            raise ValueError(
                f"shape mismatch: buffer {self._residual.shape}, input {tensor.shape}"
            )
        self._residual += tensor
        return self._residual.copy()

    def subtract(self, reconstructed: np.ndarray) -> None:
        """Step (b): subtract the receiver-visible reconstruction.

        After this call the buffer holds exactly the quantization error that
        will be folded into the next step's transmission.
        """
        reconstructed = np.asarray(reconstructed)
        if reconstructed.shape != self._residual.shape:
            raise ValueError(
                f"shape mismatch: buffer {self._residual.shape}, "
                f"reconstruction {reconstructed.shape}"
            )
        self._residual -= reconstructed

    def transact(
        self, tensor: np.ndarray, lossy: Callable[[np.ndarray], tuple[object, np.ndarray]]
    ) -> object:
        """Run one full accumulate → compress → correct cycle.

        Parameters
        ----------
        tensor:
            The new state change to transmit.
        lossy:
            Function mapping the error-corrected tensor to a pair
            ``(message, reconstruction)`` where ``reconstruction`` is what
            the receiver will decode.

        Returns
        -------
        object
            The ``message`` produced by ``lossy``.
        """
        corrected = self.add(tensor)
        message, reconstruction = lossy(corrected)
        self.subtract(reconstruction)
        return message

    def reset(self) -> None:
        """Zero the residual (used when a training run restarts)."""
        self._residual.fill(0)

    def load_residual(self, residual: np.ndarray) -> None:
        """Restore a checkpointed residual (resumable training).

        The residual is training state: a restart that drops it silently
        loses every update the lossy stage had deferred.
        """
        residual = np.asarray(residual, dtype=self._residual.dtype)
        if residual.shape != self._residual.shape:
            raise ValueError(
                f"shape mismatch: buffer {self._residual.shape}, "
                f"checkpoint {residual.shape}"
            )
        self._residual[...] = residual

    def l2_norm(self) -> float:
        """Euclidean norm of the residual — a diagnostics hook."""
        return float(np.linalg.norm(self._residual))
