"""Naive 2-bit packing of ternary values (ablation baseline, paper §3.2).

TernGrad and the strawman the paper compares quartic encoding against store
each value of ``{-1, 0, 1}`` in 2 bits (four values per byte). Quartic
encoding is 20% smaller (1.6 vs 2 bits per value). This module exists so
the encoding ablation benchmark can measure that gap on real tensors.

Digit mapping: value + 1 ∈ {0, 1, 2} in each 2-bit lane, most-significant
lane first within a byte.
"""

from __future__ import annotations

import numpy as np

__all__ = ["twobit_encode", "twobit_decode", "TWOBIT_GROUP"]

TWOBIT_GROUP = 4


def twobit_encode(values: np.ndarray) -> np.ndarray:
    """Pack ternary values into 2-bit lanes, four per byte."""
    flat = np.asarray(values).reshape(-1)
    if flat.size and (flat.min() < -1 or flat.max() > 1):
        raise ValueError("2-bit encoding requires values in {-1, 0, 1}")
    digits = (flat.astype(np.int16) + 1).astype(np.uint8)
    pad = (-flat.size) % TWOBIT_GROUP
    if pad:
        digits = np.concatenate([digits, np.ones(pad, dtype=np.uint8)])
    lanes = digits.reshape(-1, TWOBIT_GROUP)
    return (
        (lanes[:, 0] << 6) | (lanes[:, 1] << 4) | (lanes[:, 2] << 2) | lanes[:, 3]
    ).astype(np.uint8)


def twobit_decode(encoded: np.ndarray, count: int) -> np.ndarray:
    """Unpack 2-bit lanes back to ternary values."""
    arr = np.asarray(encoded, dtype=np.uint8).reshape(-1)
    expected = -(-count // TWOBIT_GROUP) if count else 0
    if arr.size != expected:
        raise ValueError(f"encoded length {arr.size} inconsistent with count {count}")
    lanes = np.empty((arr.size, TWOBIT_GROUP), dtype=np.uint8)
    lanes[:, 0] = (arr >> 6) & 0b11
    lanes[:, 1] = (arr >> 4) & 0b11
    lanes[:, 2] = (arr >> 2) & 0b11
    lanes[:, 3] = arr & 0b11
    flat = lanes.reshape(-1)[:count]
    if flat.size and flat.max() > 2:
        raise ValueError("2-bit lane outside ternary digit range")
    return flat.astype(np.int8) - 1
