"""The 3LC codec: quantization + quartic encoding + zero-run encoding.

:class:`ThreeLCCodec` chains the three transforms of the paper (§3) into a
tensor → :class:`~repro.core.packets.WireMessage` pipeline and back.
:class:`CompressionContext` binds a codec to the per-tensor
:class:`~repro.core.error_feedback.ErrorAccumulationBuffer` that corrects
quantization errors across training steps — one context per tensor per
direction, mirroring the paper's point-to-point design (Figure 2).

The codec is stateless; all cross-step state lives in the context. This
separation lets the parameter server share one compressed pull message
among all workers (paper §3, "sharing compression") while each worker keeps
its own push context.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage
from repro.core.quantization import (
    QuantizedTensor,
    dequantize_3value,
    quantize_3value,
    quantize_3value_batch,
)
from repro.core.quartic import quartic_decode, quartic_encode, quartic_encode_batch
from repro.core.zre import zre_decode, zre_encode

__all__ = [
    "ThreeLCCodec",
    "CompressionContext",
    "CompressionResult",
    "compress_context_batch",
]


@dataclass(frozen=True)
class CompressionResult:
    """Output of one compression call.

    Attributes
    ----------
    message:
        The framed wire message to transmit.
    reconstruction:
        What the receiver will decode — the sender uses this to update its
        error accumulation buffer without a decode round-trip.
    """

    message: WireMessage
    reconstruction: np.ndarray

    @property
    def wire_size(self) -> int:
        return self.message.wire_size

    def bits_per_value(self) -> float:
        """Wire bits spent per tensor element (header included)."""
        count = self.message.element_count
        if count == 0:
            return 0.0
        return 8.0 * self.message.wire_size / count


class ThreeLCCodec:
    """3LC tensor codec (paper §3.1–3.3).

    Parameters
    ----------
    sparsity_multiplier:
        The knob ``s`` with ``1 <= s < 2``. Default 1.0 preserves the
        maximum input magnitude exactly; larger values emit more zeros for
        zero-run encoding to exploit.
    use_zre:
        If False, stop after quartic encoding (the "No ZRE" row of
        Table 2). Wire payload is then exactly 1.6 bits/value.
    dtype:
        Dtype used for dequantized tensors.
    """

    def __init__(
        self,
        sparsity_multiplier: float = 1.0,
        *,
        use_zre: bool = True,
        dtype: np.dtype | type = np.float32,
    ):
        # Validate eagerly so misconfiguration fails at construction.
        quantize_3value(np.zeros(1, dtype=np.float32), sparsity_multiplier)
        self.sparsity_multiplier = float(sparsity_multiplier)
        self.use_zre = bool(use_zre)
        self.dtype = np.dtype(dtype)

    @property
    def codec_id(self) -> CodecId:
        return CodecId.THREELC if self.use_zre else CodecId.THREELC_NO_ZRE

    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        """Run only the lossy stage (exposed for tests and diagnostics)."""
        return quantize_3value(tensor, self.sparsity_multiplier)

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        """Compress a tensor into a wire message.

        The returned reconstruction equals ``decompress(message)`` exactly;
        tests assert this identity.
        """
        arr = np.asarray(tensor, dtype=self.dtype)
        quantized = self.quantize(arr)
        encoded = quartic_encode(quantized.values)
        if self.use_zre:
            encoded = zre_encode(encoded)
        message = WireMessage(
            codec_id=self.codec_id,
            shape=arr.shape,
            payload=encoded.tobytes(),
            scalars=(quantized.scale,),
            dtype=self.dtype,
        )
        return CompressionResult(message, dequantize_3value(quantized, self.dtype))

    def compress_batch(self, tensors) -> list[CompressionResult]:
        """Compress many tensors with one vectorized codec pass.

        Equivalent to ``[self.compress(t) for t in tensors]`` — each
        result's message and reconstruction are bit-identical to the
        per-tensor path (the quantization and quartic stages share one
        NumPy call across all tensors; only zero-run encoding, whose
        output length varies per segment, stays per-tensor). This is the
        batched-codec contract the fused engine hot paths rely on.
        """
        arrs = [np.asarray(t, dtype=self.dtype) for t in tensors]
        if not arrs:
            return []
        lengths = np.array([a.size for a in arrs], dtype=np.intp)
        flat = np.concatenate([a.reshape(-1) for a in arrs])
        values, scales = quantize_3value_batch(
            flat, lengths, self.sparsity_multiplier
        )
        packed, byte_offsets = quartic_encode_batch(values, lengths)
        # One fused reconstruction pass: each element times its segment's
        # scale, cast exactly as the scalar dequantize does.
        recon = values.astype(self.dtype, copy=False) * np.repeat(
            scales, lengths
        ).astype(self.dtype, copy=False)
        starts = np.concatenate(([0], np.cumsum(lengths)))
        results = []
        for i, arr in enumerate(arrs):
            encoded = packed[byte_offsets[i] : byte_offsets[i + 1]]
            if self.use_zre:
                encoded = zre_encode(encoded)
            message = WireMessage(
                codec_id=self.codec_id,
                shape=arr.shape,
                payload=encoded.tobytes(),
                scalars=(float(scales[i]),),
                dtype=self.dtype,
            )
            results.append(
                CompressionResult(
                    message,
                    recon[starts[i] : starts[i + 1]].reshape(arr.shape),
                )
            )
        return results

    def decompress(self, message: WireMessage) -> np.ndarray:
        """Decode a wire message back to a dense tensor (``M · Q``)."""
        if message.codec_id not in (CodecId.THREELC, CodecId.THREELC_NO_ZRE):
            raise ValueError(f"not a 3LC message: {message.codec_id!r}")
        encoded = np.frombuffer(message.payload, dtype=np.uint8)
        if message.codec_id is CodecId.THREELC:
            encoded = zre_decode(encoded)
        count = message.element_count
        values = quartic_decode(encoded, count, message.shape)
        (scale,) = message.scalars
        quantized = QuantizedTensor(values, scale)
        return dequantize_3value(quantized, message.dtype)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ThreeLCCodec(s={self.sparsity_multiplier}, "
            f"use_zre={self.use_zre}, dtype={self.dtype})"
        )


class CompressionContext:
    """Per-tensor, per-direction compression state (paper Figure 2/3).

    Owns the error accumulation buffer and runs the full transmit cycle:
    accumulate → quantize/encode → locally dequantize → store residual.

    Parameters
    ----------
    shape:
        Shape of the tensor this context transmits.
    codec:
        The codec to apply. Contexts with ``error_feedback=False`` (used by
        the stochastic-quantization baseline, where feedback harms
        convergence per the paper) compress the raw input each step.
    error_feedback:
        Whether to maintain the accumulation buffer.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        codec: ThreeLCCodec,
        *,
        error_feedback: bool = True,
    ):
        self.shape = tuple(int(d) for d in shape)
        self.codec = codec
        self.buffer: ErrorAccumulationBuffer | None = (
            ErrorAccumulationBuffer(self.shape, dtype=codec.dtype)
            if error_feedback
            else None
        )

    def compress(self, tensor: np.ndarray) -> CompressionResult:
        """Compress one step's state change, applying error feedback."""
        arr = np.asarray(tensor, dtype=self.codec.dtype)
        if arr.shape != self.shape:
            raise ValueError(f"context shape {self.shape}, tensor {arr.shape}")
        if self.buffer is None:
            return self.codec.compress(arr)
        corrected = self.buffer.add(arr)
        result = self.codec.compress(corrected)
        self.buffer.subtract(result.reconstruction)
        return result

    def decompress(self, message: WireMessage) -> np.ndarray:
        """Decode a received message (receive side carries no state)."""
        return self.codec.decompress(message)

    def residual_norm(self) -> float:
        """L2 norm of the accumulated error (0 when feedback is off)."""
        return self.buffer.l2_norm() if self.buffer is not None else 0.0

    def state_dict(self) -> dict:
        """Checkpointable cross-step state (the error residual)."""
        if self.buffer is None:
            return {}
        return {"residual": self.buffer.residual.copy()}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into a fresh context."""
        if self.buffer is None:
            if state:
                raise ValueError("context has no error buffer to restore")
            return
        self.buffer.load_residual(state["residual"])


def compress_context_batch(items) -> list[CompressionResult]:
    """Run many ``(CompressionContext, tensor)`` pairs as batched codec calls.

    Semantically ``[ctx.compress(t) for ctx, t in items]`` — each context's
    error-feedback cycle (accumulate → compress → store residual) runs
    against its own buffer, so reordering the codec work across contexts
    cannot change any result — but contexts sharing a codec funnel into one
    :meth:`ThreeLCCodec.compress_batch` call. Contexts with distinct codecs
    batch per codec; results come back in input order, bit-identical to the
    per-context path.
    """
    items = list(items)
    corrected: list[np.ndarray] = []
    by_codec: dict[int, tuple[ThreeLCCodec, list[int]]] = {}
    for pos, (ctx, tensor) in enumerate(items):
        arr = np.asarray(tensor, dtype=ctx.codec.dtype)
        if arr.shape != ctx.shape:
            raise ValueError(f"context shape {ctx.shape}, tensor {arr.shape}")
        if ctx.buffer is not None:
            arr = ctx.buffer.add(arr)
        corrected.append(arr)
        entry = by_codec.get(id(ctx.codec))
        if entry is None:
            by_codec[id(ctx.codec)] = (ctx.codec, [pos])
        else:
            entry[1].append(pos)
    results: list[CompressionResult | None] = [None] * len(items)
    for codec, positions in by_codec.values():
        batch = codec.compress_batch([corrected[p] for p in positions])
        for pos, result in zip(positions, batch):
            results[pos] = result
    for (ctx, _), result in zip(items, results):
        if ctx.buffer is not None:
            ctx.buffer.subtract(result.reconstruction)
    return results
