"""Canonical Huffman coding over quartic bytes (comparator for ZRE).

The paper positions zero-run encoding against "general-purpose compression
algorithms or entropy coding schemes" (§3.3, §6): entropy coders reach
similar or better ratios but need bit-level operations and lookup tables,
costing more CPU. This module provides that comparator so the ablation
benchmark can measure both sides of the trade on real quantized traffic.

Format of the encoded buffer::

    offset  size  field
    0       4     number of symbols (uint32 LE)
    4       256   canonical code length per byte value (uint8; 0 = unused)
    260     n     bit-packed canonical codes (MSB first within each byte)

Encoding is vectorized (bit-matrix gather + ``np.packbits``); decoding is
a canonical first-code walk, intentionally reference-quality — the paper's
point is precisely that decoders like this are slower than ZRE's byte-level
scan.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

__all__ = ["huffman_encode", "huffman_decode", "build_code_lengths", "canonical_codes"]

_HEADER = struct.Struct("<I")
_ALPHABET = 256


def build_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Huffman code length per symbol (0 for absent symbols).

    Standard heap construction; ties broken deterministically by symbol
    value so encoders and decoders agree without transmitting the tree.
    """
    freqs = np.asarray(frequencies, dtype=np.int64)
    if freqs.shape != (_ALPHABET,):
        raise ValueError("frequencies must have shape (256,)")
    present = np.flatnonzero(freqs > 0)
    lengths = np.zeros(_ALPHABET, dtype=np.uint8)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths
    # Heap of (frequency, tiebreak, symbols-in-subtree).
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in present
    ]
    heapq.heapify(heap)
    tiebreak = _ALPHABET
    while len(heap) > 1:
        fa, _, sa = heapq.heappop(heap)
        fb, _, sb = heapq.heappop(heap)
        for symbol in sa + sb:
            lengths[symbol] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, sa + sb))
        tiebreak += 1
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values (as uint64) for the given code lengths."""
    lengths = np.asarray(lengths, dtype=np.uint8)
    codes = np.zeros(_ALPHABET, dtype=np.uint64)
    code = 0
    previous_length = 0
    # Canonical order: by (length, symbol).
    order = sorted(np.flatnonzero(lengths > 0), key=lambda s: (lengths[s], s))
    for symbol in order:
        length = int(lengths[symbol])
        code <<= length - previous_length
        codes[symbol] = code
        code += 1
        previous_length = length
    return codes


def huffman_encode(data: np.ndarray) -> bytes:
    """Encode a uint8 array to the self-describing Huffman format."""
    arr = np.asarray(data, dtype=np.uint8).reshape(-1)
    freqs = np.bincount(arr, minlength=_ALPHABET)
    lengths = build_code_lengths(freqs)
    codes = canonical_codes(lengths)
    header = _HEADER.pack(arr.size) + lengths.tobytes()
    if arr.size == 0:
        return header
    max_len = int(lengths.max())
    # Bit matrix: row s holds code(s) MSB-first, left-aligned in max_len.
    shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
    # Right-align each code within its own length, then place at the left.
    aligned = codes[:, None] << (shifts - np.uint64(0))[None, :] * np.uint64(0)
    # Compute bit b of code s at position p < lengths[s]:
    # bit index from MSB: p, so extract (lengths[s]-1-p)-th bit.
    pos = np.arange(max_len)
    bit_index = lengths.astype(np.int64)[:, None] - 1 - pos[None, :]
    valid_lut = bit_index >= 0
    safe_index = np.maximum(bit_index, 0).astype(np.uint64)
    bits_lut = ((codes[:, None] >> safe_index) & np.uint64(1)).astype(np.uint8)
    bits_lut[~valid_lut] = 0
    # Gather per-symbol rows and select valid bits in order.
    rows = bits_lut[arr]  # (n, max_len)
    mask = valid_lut[arr]  # (n, max_len)
    stream = rows[mask]  # flattens C-order: symbol by symbol, MSB first
    return header + np.packbits(stream).tobytes()


def huffman_decode(payload: bytes) -> np.ndarray:
    """Decode :func:`huffman_encode` output (canonical first-code walk)."""
    if len(payload) < _HEADER.size + _ALPHABET:
        raise ValueError("truncated Huffman buffer")
    (count,) = _HEADER.unpack_from(payload, 0)
    lengths = np.frombuffer(
        payload, dtype=np.uint8, count=_ALPHABET, offset=_HEADER.size
    )
    if count == 0:
        return np.zeros(0, dtype=np.uint8)
    bits = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8, offset=_HEADER.size + _ALPHABET)
    )
    # Canonical decoding tables: for each length, the first code value and
    # the symbols of that length in canonical order.
    order = sorted(np.flatnonzero(lengths > 0), key=lambda s: (lengths[s], s))
    symbols_by_length: dict[int, list[int]] = {}
    first_code: dict[int, int] = {}
    code = 0
    previous_length = 0
    for symbol in order:
        length = int(lengths[symbol])
        code <<= length - previous_length
        if length not in first_code:
            first_code[length] = code
        symbols_by_length.setdefault(length, []).append(int(symbol))
        code += 1
        previous_length = length

    out = np.empty(count, dtype=np.uint8)
    bit_list = bits.tolist()  # Python ints walk faster than ndarray scalars
    cursor = 0
    total_bits = len(bit_list)
    for i in range(count):
        value = 0
        length = 0
        while True:
            if cursor >= total_bits:
                raise ValueError("bitstream exhausted mid-symbol")
            value = (value << 1) | bit_list[cursor]
            cursor += 1
            length += 1
            row = symbols_by_length.get(length)
            if row is not None:
                offset = value - first_code[length]
                if 0 <= offset < len(row):
                    out[i] = row[offset]
                    break
            if length > 64:
                raise ValueError("invalid Huffman stream")
    return out
